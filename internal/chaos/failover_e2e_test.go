package chaos_test

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/journal"
	"extmesh/internal/metrics"
	"extmesh/internal/serve"
	"extmesh/meshclient"
)

// ---------------------------------------------------------------------
// Failover chaos harness: in-process cluster nodes with a Failover
// controller each, plus a partition fabric that owns every inter-node
// connection — isolating a node refuses its future dials in both
// directions AND severs its established streams, which is exactly what
// a SIGKILL or a switch failure looks like from the other side.

type partConn struct {
	from, to string
	c        net.Conn
}

type partition struct {
	mu       sync.Mutex
	isolated map[string]bool
	cut      map[string]bool   // severed single links, keyed by linkKey
	addrNode map[string]string // replication addr -> node name
	conns    []partConn
}

func newPartition() *partition {
	return &partition{isolated: map[string]bool{}, cut: map[string]bool{}, addrNode: map[string]string{}}
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// blockedLocked reports whether traffic between two nodes is down,
// either because one end is isolated or because that single link is
// severed. Callers hold p.mu.
func (p *partition) blockedLocked(from, to string) bool {
	return p.isolated[from] || p.isolated[to] || p.cut[linkKey(from, to)]
}

// dialer returns the FailoverOptions.Dial seam for one node: every
// stream and probe that node opens passes through the fabric.
func (p *partition) dialer(from string) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		p.mu.Lock()
		to := p.addrNode[addr]
		blocked := p.blockedLocked(from, to)
		p.mu.Unlock()
		if blocked {
			return nil, fmt.Errorf("chaos: %s->%s partitioned", from, to)
		}
		c, err := (&net.Dialer{}).DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		if p.blockedLocked(from, to) { // flipped mid-dial
			p.mu.Unlock()
			c.Close()
			return nil, fmt.Errorf("chaos: %s->%s partitioned", from, to)
		}
		p.conns = append(p.conns, partConn{from: from, to: to, c: c})
		p.mu.Unlock()
		return c, nil
	}
}

// sever cuts (or heals) the single link between two nodes, leaving
// every other link intact — the asymmetric partition a failed switch
// port produces. On cut, live connections between the pair die too.
func (p *partition) sever(a, b string, cut bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut[linkKey(a, b)] = cut
	if !cut {
		return
	}
	keep := p.conns[:0]
	for _, pc := range p.conns {
		if linkKey(pc.from, pc.to) == linkKey(a, b) {
			pc.c.Close()
			continue
		}
		keep = append(keep, pc)
	}
	p.conns = keep
}

// isolate cuts (or heals) one node: future dials touching it are
// refused and, on cut, its live connections are severed.
func (p *partition) isolate(name string, cut bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated[name] = cut
	if !cut {
		return
	}
	keep := p.conns[:0]
	for _, pc := range p.conns {
		if pc.from == name || pc.to == name {
			pc.c.Close()
			continue
		}
		keep = append(keep, pc)
	}
	p.conns = keep
}

// foNode is one failover-managed cluster node, all in-process.
type foNode struct {
	name    string
	dir     string
	s       *serve.Server
	store   *journal.Store
	reg     *metrics.Registry
	http    *httptest.Server
	repL    net.Listener
	repAddr string
	cancel  context.CancelFunc
	done    chan struct{}
}

// newFoNode boots (or reboots, over the same dir and replication
// address) a failover cluster node. addr "" picks a fresh port.
func newFoNode(t *testing.T, dir, name, addr string) *foNode {
	t.Helper()
	reg := metrics.NewRegistry()
	store, err := journal.Open(dir, journal.Options{Policy: journal.SyncNever, CompactEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{
		Journal:      store,
		Metrics:      reg,
		NodeID:       name,
		RepHeartbeat: 25 * time.Millisecond,
	})
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &foNode{
		name: name, dir: dir, s: s, store: store, reg: reg,
		http: httptest.NewServer(s.Handler()),
		repL: l, repAddr: l.Addr().String(),
	}
}

// start attaches and runs the Failover controller. rank doubles as the
// candidacy stagger.
func (n *foNode) start(t *testing.T, p *partition, peers []string, startPrimary bool, rank int, timeout time.Duration) {
	t.Helper()
	fo, err := serve.NewFailover(n.s, serve.FailoverOptions{
		Listener:     n.repL,
		Peers:        peers,
		StartPrimary: startPrimary,
		Timeout:      timeout,
		Rank:         rank,
		Retry:        20 * time.Millisecond,
		Dial:         p.dialer(n.name),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.done = make(chan struct{})
	go func() { fo.Run(ctx); close(n.done) }()
	t.Cleanup(func() { n.stop() })
}

// stop tears the node down; idempotent. With graceful=false the node is
// first isolated so its goodbye frames cannot reach anyone — the
// in-process equivalent of SIGKILL.
func (n *foNode) stop() {
	if n.cancel != nil {
		n.cancel()
		<-n.done
		n.cancel = nil
	}
	n.repL.Close()
	n.http.Close()
	n.store.Close()
}

func (n *foNode) kill(p *partition) {
	p.isolate(n.name, true)
	n.stop()
}

func (n *foNode) status() serve.ReplicationStatus { return n.s.ReplicationStatus() }

func (n *foNode) writable() bool {
	st := n.status()
	return st.Role == "primary" && !st.Fenced
}

// newFoCluster builds an n-node failover cluster: node 0 starts
// primary, the rest follow it. Returns once every follower has attached
// to the primary's stream — a managed primary refuses writes until one
// has, so tests must not race formation.
func newFoCluster(t *testing.T, p *partition, size int, timeout time.Duration) []*foNode {
	t.Helper()
	nodes := make([]*foNode, size)
	for i := range nodes {
		nodes[i] = newFoNode(t, t.TempDir(), fmt.Sprintf("n%d", i), "")
		p.addrNode[nodes[i].repAddr] = nodes[i].name
	}
	for i, n := range nodes {
		var peers []string
		for j, m := range nodes {
			if j != i {
				peers = append(peers, m.repAddr)
			}
		}
		n.start(t, p, peers, i == 0, i, timeout)
	}
	waitConverged(t, "cluster formation", 10*time.Second, func() bool {
		return len(nodes[0].status().Followers) == size-1
	})
	return nodes
}

func foClusterClient(t *testing.T, nodes []*foNode) *meshclient.ClusterClient {
	t.Helper()
	var replicas []string
	for _, n := range nodes[1:] {
		replicas = append(replicas, n.http.URL)
	}
	cc, err := meshclient.NewCluster(meshclient.ClusterOptions{
		Primary:  nodes[0].http.URL,
		Replicas: replicas,
		Node: meshclient.Options{
			MaxRetries:       6,
			BaseBackoff:      2 * time.Millisecond,
			MaxBackoff:       20 * time.Millisecond,
			BreakerThreshold: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// ackedFaultsPresent asserts every acknowledged fault write survived
// into the given server's state.
func ackedFaultsPresent(t *testing.T, s *serve.Server, mesh string, acked []extmesh.Coord) {
	t.Helper()
	d := s.Meshes().Get(mesh)
	if d == nil {
		t.Fatalf("mesh %q missing", mesh)
	}
	have := map[extmesh.Coord]bool{}
	for _, c := range d.Faults() {
		have[c] = true
	}
	lost := 0
	for _, c := range acked {
		if !have[c] {
			lost++
			t.Errorf("acked write lost: fault (%d,%d)", c.X, c.Y)
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged writes lost", lost, len(acked))
	}
}

// ---------------------------------------------------------------------

// TestFailoverPrimaryKillPromotionAndRejoin is the tentpole e2e: the
// primary of a three-node cluster is hard-killed mid-write-load, a
// follower promotes itself into a new epoch, the cluster client's
// writes fail over to it with zero acknowledged loss, and the old
// primary restarts from its own journal as a demoted follower that
// resyncs to byte-identical state.
func TestFailoverPrimaryKillPromotionAndRejoin(t *testing.T) {
	p := newPartition()
	const timeout = 400 * time.Millisecond
	nodes := newFoCluster(t, p, 3, timeout)
	cc := foClusterClient(t, nodes)
	ctx := context.Background()

	if _, err := cc.CreateMesh(ctx, "m", 32, 32, nil); err != nil {
		t.Fatal(err)
	}
	var acked []extmesh.Coord
	write := func(i int) bool {
		c := extmesh.Coord{X: i % 32, Y: (i / 32) % 32}
		_, err := cc.DoWrite(ctx, "POST", "/v1/mesh/m/faults",
			[]byte(fmt.Sprintf(`{"fail":[{"x":%d,"y":%d}]}`, c.X, c.Y)), true)
		if err == nil {
			acked = append(acked, c)
			return true
		}
		return false
	}
	for i := 0; i < 10; i++ {
		if !write(i) {
			t.Fatalf("pre-kill write %d failed", i)
		}
	}

	oldEpoch := nodes[0].status().Epoch
	nodes[0].kill(p)

	// Keep writing through the outage until 10 writes land on the new
	// primary. Individual failures during the failover window are
	// expected; durable refusal is not.
	landed := 0
	deadline := time.Now().Add(15 * time.Second)
	for i := 10; landed < 10; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("writes never recovered after the primary kill (%d landed)", landed)
		}
		if write(i) {
			landed++
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}

	winner := nodes[1]
	if !winner.writable() {
		winner = nodes[2]
	}
	if !winner.writable() {
		t.Fatalf("no writable winner: %+v / %+v", nodes[1].status(), nodes[2].status())
	}
	st := winner.status()
	if st.Epoch <= oldEpoch {
		t.Fatalf("winner epoch %d did not advance past %d", st.Epoch, oldEpoch)
	}
	if st.Promotions == 0 {
		t.Fatal("winner reports zero promotions")
	}
	if got := cc.PrimaryAddr(); got != winner.http.URL {
		t.Fatalf("cluster client writes to %s, winner is %s", got, winner.http.URL)
	}

	// The old primary restarts from its own journal — same dir, same
	// replication address — and must come back as a demoted follower
	// (epoch-mismatch hello forces a full resync from the winner).
	p.isolate("n0", false)
	restarted := newFoNode(t, nodes[0].dir, "n0", nodes[0].repAddr)
	p.addrNode[restarted.repAddr] = "n0"
	restarted.start(t, p, []string{nodes[1].repAddr, nodes[2].repAddr}, false, 0, timeout)

	head := func() uint64 { return winner.s.JournalSeq() }
	waitConverged(t, "old primary to rejoin and all nodes to converge", 15*time.Second, func() bool {
		h := head()
		return restarted.s.JournalSeq() == h &&
			nodes[1].s.JournalSeq() == h && nodes[2].s.JournalSeq() == h &&
			restarted.status().Epoch == st.Epoch
	})
	if restarted.writable() {
		t.Fatal("restarted old primary came back writable — split-brain")
	}
	assertBitIdentical(t, winner.s, restarted.s, nodes[1].s, nodes[2].s)
	ackedFaultsPresent(t, winner.s, "m", acked)
	t.Logf("promotion: epoch %d -> %d on %s; %d acked writes, 0 lost",
		oldEpoch, st.Epoch, st.NodeID, len(acked))
}

// TestFailoverDuelingPrimariesConverge partitions the primary away from
// both followers so the cluster briefly holds two primary claimants.
// The isolated one must fence itself (zero acknowledged writes on its
// side), and after the heal exactly one writable epoch winner remains,
// with every node byte-identical.
func TestFailoverDuelingPrimariesConverge(t *testing.T) {
	p := newPartition()
	const timeout = 400 * time.Millisecond
	nodes := newFoCluster(t, p, 3, timeout)
	cc := foClusterClient(t, nodes)
	ctx := context.Background()

	if _, err := cc.CreateMesh(ctx, "m", 32, 32, nil); err != nil {
		t.Fatal(err)
	}
	var acked []extmesh.Coord
	for i := 0; i < 8; i++ {
		c := extmesh.Coord{X: i, Y: 1}
		if _, err := cc.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{c}}); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, c)
	}

	p.isolate("n0", true)

	// The zombie side: n0 still thinks it is primary, but with its
	// followers gone it must fence within the lease window and refuse
	// every write for the whole duel.
	zombie, err := meshclient.New(meshclient.Options{
		BaseURL: nodes[0].http.URL, MaxRetries: 0, BreakerThreshold: -1,
		BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "isolated primary to fence itself", 5*time.Second, func() bool {
		return nodes[0].status().Fenced
	})
	waitConverged(t, "a follower to promote", 10*time.Second, func() bool {
		return nodes[1].writable() || nodes[2].writable()
	})
	winner := nodes[1]
	if !winner.writable() {
		winner = nodes[2]
	}
	// The winner refuses writes (replication_unconfirmed) until the
	// losing candidate cedes and attaches as its follower — correct
	// lease behavior, but not the window this test measures. Wait out
	// the attach so the mid-duel writes exercise the steady duel.
	waitConverged(t, "the ceding candidate to follow the winner", 10*time.Second, func() bool {
		return len(winner.status().Followers) >= 1
	})

	// Dueling claimants exist right now. The zombie must refuse writes…
	for i := 0; i < 5; i++ {
		resp, err := zombie.Do(ctx, "POST", "/v1/mesh/m/faults", []byte(`{"fail":[{"x":30,"y":30}]}`), false)
		if err == nil && resp.Status < 300 {
			t.Fatal("isolated primary acknowledged a write while fenced — split-brain")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// …while the winner's side keeps acknowledging through the client.
	for i := 0; i < 8; i++ {
		c := extmesh.Coord{X: i, Y: 3}
		if _, err := cc.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{c}}); err != nil {
			t.Fatalf("write on the winning side failed mid-duel: %v", err)
		}
		acked = append(acked, c)
	}
	winEpoch := winner.status().Epoch
	if old := nodes[0].status().Epoch; winEpoch <= old {
		t.Fatalf("winner epoch %d does not dominate the zombie's %d", winEpoch, old)
	}

	// Heal. The old primary must demote, resync from the winner, and
	// drop any trace of its fenced era; the cluster ends with exactly
	// one writable node and identical bytes everywhere.
	p.isolate("n0", false)
	waitConverged(t, "healed cluster to converge on one epoch", 15*time.Second, func() bool {
		h := winner.s.JournalSeq()
		if nodes[0].s.JournalSeq() != h || nodes[1].s.JournalSeq() != h || nodes[2].s.JournalSeq() != h {
			return false
		}
		writable := 0
		for _, n := range nodes {
			if n.status().Epoch != winEpoch {
				return false
			}
			if n.writable() {
				writable++
			}
		}
		return writable == 1
	})
	if nodes[0].writable() {
		t.Fatal("the partitioned ex-primary is still writable after the heal")
	}
	assertBitIdentical(t, nodes[0].s, nodes[1].s, nodes[2].s)
	ackedFaultsPresent(t, winner.s, "m", acked)
	demotions := nodes[0].reg.Counter("cluster_demotions_total").Value()
	if demotions == 0 {
		t.Fatal("ex-primary never recorded its demotion")
	}
}

// TestFailoverGoodbyeFastFailover pins the graceful-drain satellite: a
// SIGTERM'd primary says goodbye on its replication streams, so its
// follower starts failover immediately instead of waiting out the stall
// deadline. With a 5s deadline, promotion inside 3s is only possible
// via the goodbye.
func TestFailoverGoodbyeFastFailover(t *testing.T) {
	p := newPartition()
	const timeout = 5 * time.Second
	// Built by hand rather than via newFoCluster: the lone follower gets
	// rank 0, so no candidacy stagger blurs the goodbye-vs-stall timing
	// this test exists to measure.
	nodes := []*foNode{
		newFoNode(t, t.TempDir(), "n0", ""),
		newFoNode(t, t.TempDir(), "n1", ""),
	}
	p.addrNode[nodes[0].repAddr] = "n0"
	p.addrNode[nodes[1].repAddr] = "n1"
	nodes[0].start(t, p, []string{nodes[1].repAddr}, true, 0, timeout)
	nodes[1].start(t, p, []string{nodes[0].repAddr}, false, 0, timeout)
	waitConverged(t, "cluster formation", 10*time.Second, func() bool {
		return len(nodes[0].status().Followers) == 1
	})
	cc := foClusterClient(t, nodes)
	ctx := context.Background()

	if _, err := cc.CreateMesh(ctx, "m", 16, 16, nil); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	nodes[0].stop() // graceful: ctx cancel → goodbye frame to the follower
	waitConverged(t, "goodbye-driven promotion", 4*time.Second, func() bool {
		return nodes[1].writable()
	})
	elapsed := time.Since(start)
	if elapsed >= timeout {
		t.Fatalf("promotion took %v — the stall deadline, not the goodbye, drove it", elapsed)
	}
	if g := nodes[0].reg.Counter("replication_goodbyes_sent_total").Value(); g == 0 {
		t.Fatal("primary never sent a goodbye frame")
	}
	t.Logf("goodbye failover in %v (deadline %v)", elapsed, timeout)
}

// TestFailoverAsymmetricPartitionKeepsIncumbent severs ONLY the
// primary↔n2 link: n0 keeps serving writes confirmed through n1, while
// n2 — hearing nothing — stands for promotion round after round. n2
// must never usurp: every probe of n1 reports fresh contact with the
// live incumbent, so candidacy cedes indefinitely. This is the
// acknowledged-write-loss regression: a candidate that promotes past a
// reachable, longer-history peer forces the incumbent's side into a
// truncating resync when the link heals.
func TestFailoverAsymmetricPartitionKeepsIncumbent(t *testing.T) {
	p := newPartition()
	const timeout = 300 * time.Millisecond
	nodes := newFoCluster(t, p, 3, timeout)
	cc := foClusterClient(t, nodes)
	ctx := context.Background()

	if _, err := cc.CreateMesh(ctx, "m", 32, 32, nil); err != nil {
		t.Fatal(err)
	}
	var acked []extmesh.Coord
	write := func(i int) {
		t.Helper()
		c := extmesh.Coord{X: i % 32, Y: (i / 32) % 32}
		if _, err := cc.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{c}}); err != nil {
			t.Fatalf("write %d failed on the incumbent's side: %v", i, err)
		}
		acked = append(acked, c)
	}
	for i := 0; i < 8; i++ {
		write(i)
	}

	oldEpoch := nodes[0].status().Epoch
	p.sever("n0", "n2", true)

	// Hold the cut open for many failover deadlines — enough for n2 to
	// stall out, stand candidacy repeatedly, and (under the old bounded
	// deferral) promote. Writes must keep confirming through n1 the
	// whole time, and n2 must never take the primary role.
	deadline := time.Now().Add(10 * timeout)
	for i := 8; time.Now().Before(deadline); i++ {
		write(i)
		if st := nodes[2].status(); st.Promotions > 0 || st.Role == "primary" {
			t.Fatalf("cut-off follower usurped a live primary: %+v", st)
		}
		if st := nodes[0].status(); st.Epoch != oldEpoch || st.Role != "primary" {
			t.Fatalf("incumbent lost its role to an unreachable peer: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !nodes[0].writable() {
		t.Fatalf("incumbent not writable through the partition: %+v", nodes[0].status())
	}

	// Heal. n2 rediscovers the incumbent and resumes from its own
	// offset (its journal is a strict prefix — nothing to truncate);
	// nobody demotes, no epoch moves, and every acknowledged write is
	// on every node.
	p.sever("n0", "n2", false)
	waitConverged(t, "cut-off follower to re-attach and converge", 15*time.Second, func() bool {
		h := nodes[0].s.JournalSeq()
		return nodes[1].s.JournalSeq() == h && nodes[2].s.JournalSeq() == h &&
			len(nodes[0].status().Followers) == 2
	})
	if got := nodes[0].status().Epoch; got != oldEpoch {
		t.Fatalf("epoch moved %d -> %d across an asymmetric partition with a live primary", oldEpoch, got)
	}
	writable := 0
	for _, n := range nodes {
		if n.writable() {
			writable++
		}
	}
	if writable != 1 || !nodes[0].writable() {
		t.Fatalf("want exactly the incumbent writable, got %d writable nodes", writable)
	}
	assertBitIdentical(t, nodes[0].s, nodes[1].s, nodes[2].s)
	for _, n := range nodes {
		ackedFaultsPresent(t, n.s, "m", acked)
	}
	t.Logf("incumbent held epoch %d through %v of asymmetric partition; %d acked writes, 0 lost",
		oldEpoch, 10*timeout, len(acked))
}
