package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"extmesh/internal/mesh"
)

// paperFaults is the eight-fault example of Figure 1(a) in the paper,
// which forms the single faulty block [2:6, 3:6].
var paperFaults = []mesh.Coord{
	{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
	{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
}

func mustScenario(t *testing.T, m mesh.Mesh, faults []mesh.Coord) *Scenario {
	t.Helper()
	s, err := NewScenario(m, faults)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return s
}

func TestNewScenarioValidation(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	tests := []struct {
		name    string
		faults  []mesh.Coord
		wantErr bool
	}{
		{name: "empty", faults: nil},
		{name: "valid", faults: []mesh.Coord{{X: 1, Y: 1}, {X: 2, Y: 3}}},
		{name: "outside", faults: []mesh.Coord{{X: 10, Y: 0}}, wantErr: true},
		{name: "negative", faults: []mesh.Coord{{X: -1, Y: 0}}, wantErr: true},
		{name: "duplicate", faults: []mesh.Coord{{X: 1, Y: 1}, {X: 1, Y: 1}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewScenario(m, tt.faults)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewScenario err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	if _, err := NewScenario(mesh.Mesh{}, nil); err == nil {
		t.Error("NewScenario with empty mesh should fail")
	}
}

func TestScenarioIsFaulty(t *testing.T) {
	m := mesh.Mesh{Width: 5, Height: 5}
	s := mustScenario(t, m, []mesh.Coord{{X: 2, Y: 2}})
	if !s.IsFaulty(mesh.Coord{X: 2, Y: 2}) {
		t.Error("fault not reported")
	}
	if s.IsFaulty(mesh.Coord{X: 2, Y: 3}) {
		t.Error("healthy node reported faulty")
	}
	if s.IsFaulty(mesh.Coord{X: -1, Y: 0}) {
		t.Error("outside node reported faulty")
	}
	if got := s.FaultCount(); got != 1 {
		t.Errorf("FaultCount = %d, want 1", got)
	}
}

func TestBuildBlocksPaperExample(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	s := mustScenario(t, m, paperFaults)
	bs := BuildBlocks(s)

	if len(bs.Blocks) != 1 {
		t.Fatalf("got %d blocks %v, want 1", len(bs.Blocks), bs.Blocks)
	}
	want := mesh.Rect{MinX: 2, MinY: 3, MaxX: 6, MaxY: 6}
	if bs.Blocks[0] != want {
		t.Fatalf("block = %v, want %v", bs.Blocks[0], want)
	}
	// Every node of the rectangle is faulty or disabled; everything
	// outside is enabled.
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			c := mesh.Coord{X: x, Y: y}
			inRect := want.Contains(c)
			if got := bs.InBlock(c); got != inRect {
				t.Errorf("InBlock(%v) = %v, want %v", c, got, inRect)
			}
		}
	}
	// 20 nodes in the rectangle, 8 faulty, so 12 disabled.
	if got := bs.DisabledCount(); got != 12 {
		t.Errorf("DisabledCount = %d, want 12", got)
	}
	// Block index lookups.
	if got := bs.BlockAt(mesh.Coord{X: 4, Y: 5}); got != 0 {
		t.Errorf("BlockAt inside = %d, want 0", got)
	}
	if got := bs.BlockAt(mesh.Coord{X: 0, Y: 0}); got != -1 {
		t.Errorf("BlockAt outside = %d, want -1", got)
	}
}

func TestBuildBlocksNoFaults(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	bs := BuildBlocks(mustScenario(t, m, nil))
	if len(bs.Blocks) != 0 {
		t.Errorf("blocks = %v, want none", bs.Blocks)
	}
	if bs.DisabledCount() != 0 {
		t.Error("disabled nodes without faults")
	}
}

func TestBuildBlocksSingleFault(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	bs := BuildBlocks(mustScenario(t, m, []mesh.Coord{{X: 3, Y: 3}}))
	if len(bs.Blocks) != 1 || bs.Blocks[0] != mesh.RectAround(mesh.Coord{X: 3, Y: 3}) {
		t.Errorf("blocks = %v, want single 1x1 at (3,3)", bs.Blocks)
	}
	if bs.DisabledCount() != 0 {
		t.Error("a lone fault must not disable neighbors")
	}
}

func TestBuildBlocksDiagonalMerge(t *testing.T) {
	// Faults at (0,0) and (1,1): node (0,1) has a faulty Y-neighbor
	// (0,0) and faulty X-neighbor (1,1), likewise (1,0); the four nodes
	// merge into the 2x2 block [0:1, 0:1].
	m := mesh.Mesh{Width: 6, Height: 6}
	bs := BuildBlocks(mustScenario(t, m, []mesh.Coord{{X: 0, Y: 0}, {X: 1, Y: 1}}))
	if len(bs.Blocks) != 1 {
		t.Fatalf("blocks = %v, want 1", bs.Blocks)
	}
	want := mesh.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if bs.Blocks[0] != want {
		t.Errorf("block = %v, want %v", bs.Blocks[0], want)
	}
	if bs.Status(mesh.Coord{X: 0, Y: 1}) != Disabled || bs.Status(mesh.Coord{X: 1, Y: 0}) != Disabled {
		t.Error("diagonal gap nodes should be disabled")
	}
}

func TestBuildBlocksSameDimensionGap(t *testing.T) {
	// Faults at (0,0) and (2,0): node (1,0) has two faulty neighbors
	// but in the SAME dimension, so it stays enabled and two separate
	// 1x1 blocks result.
	m := mesh.Mesh{Width: 6, Height: 6}
	bs := BuildBlocks(mustScenario(t, m, []mesh.Coord{{X: 0, Y: 0}, {X: 2, Y: 0}}))
	if len(bs.Blocks) != 2 {
		t.Fatalf("blocks = %v, want 2", bs.Blocks)
	}
	if bs.Status(mesh.Coord{X: 1, Y: 0}) != Enabled {
		t.Error("(1,0) should remain enabled")
	}
}

func TestBuildBlocksStaircase(t *testing.T) {
	// A diagonal staircase of faults fills its whole bounding square.
	m := mesh.Mesh{Width: 8, Height: 8}
	bs := BuildBlocks(mustScenario(t, m, []mesh.Coord{{X: 0, Y: 2}, {X: 1, Y: 1}, {X: 2, Y: 0}}))
	if len(bs.Blocks) != 1 {
		t.Fatalf("blocks = %v, want 1", bs.Blocks)
	}
	want := mesh.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	if bs.Blocks[0] != want {
		t.Errorf("block = %v, want %v", bs.Blocks[0], want)
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{Enabled, "enabled"},
		{Faulty, "faulty"},
		{Disabled, "disabled"},
		{Status(42), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestAdjacentToBlock(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	bs := BuildBlocks(mustScenario(t, m, paperFaults))
	tests := []struct {
		c    mesh.Coord
		want bool
	}{
		{mesh.Coord{X: 1, Y: 3}, true},  // west of block
		{mesh.Coord{X: 4, Y: 2}, true},  // south of block
		{mesh.Coord{X: 7, Y: 5}, true},  // east of block
		{mesh.Coord{X: 4, Y: 7}, true},  // north of block
		{mesh.Coord{X: 0, Y: 0}, false}, // far away
		{mesh.Coord{X: 1, Y: 2}, false}, // diagonal from corner
		{mesh.Coord{X: 4, Y: 5}, false}, // inside the block
	}
	for _, tt := range tests {
		if got := bs.AdjacentToBlock(tt.c); got != tt.want {
			t.Errorf("AdjacentToBlock(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
}

// TestBlocksAreRectangularProperty verifies the key structural claim of
// the block model: at the fixpoint of Definition 1, every connected
// component of faulty/disabled nodes exactly fills its bounding
// rectangle, components are pairwise disjoint, and no enabled node
// still satisfies the disabling premise.
func TestBlocksAreRectangularProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := 8 + rng.Intn(25)
		h := 8 + rng.Intn(25)
		m := mesh.Mesh{Width: w, Height: h}
		k := rng.Intn(m.Size() / 8)
		faults, err := RandomFaults(m, k, rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		s := mustScenario(t, m, faults)
		bs := BuildBlocks(s)

		inSomeBlock := make([]bool, m.Size())
		for bi, r := range bs.Blocks {
			if !r.Valid() {
				t.Fatalf("trial %d: invalid block %v", trial, r)
			}
			for y := r.MinY; y <= r.MaxY; y++ {
				for x := r.MinX; x <= r.MaxX; x++ {
					c := mesh.Coord{X: x, Y: y}
					if !bs.InBlock(c) {
						t.Fatalf("trial %d: block %v has enabled node %v inside", trial, r, c)
					}
					if bs.BlockAt(c) != bi {
						t.Fatalf("trial %d: node %v in rect of block %d but indexed %d", trial, c, bi, bs.BlockAt(c))
					}
					i := m.Index(c)
					if inSomeBlock[i] {
						t.Fatalf("trial %d: blocks overlap at %v", trial, c)
					}
					inSomeBlock[i] = true
				}
			}
		}
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if bs.InBlock(c) != inSomeBlock[i] {
				t.Fatalf("trial %d: node %v block membership inconsistent with rectangles", trial, c)
			}
			if !bs.InBlock(c) && bs.shouldDisable(c) {
				t.Fatalf("trial %d: enabled node %v still satisfies the disable premise (not a fixpoint)", trial, c)
			}
		}
		// Every fault belongs to a block.
		for _, f := range faults {
			if bs.Status(f) != Faulty {
				t.Fatalf("trial %d: fault %v lost its status", trial, f)
			}
			if bs.BlockAt(f) < 0 {
				t.Fatalf("trial %d: fault %v not inside any block", trial, f)
			}
		}
	}
}

func TestBlockedGridMatchesStatus(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	bs := BuildBlocks(mustScenario(t, m, paperFaults))
	g := bs.BlockedGrid()
	for i := range g {
		if g[i] != bs.InBlock(m.CoordOf(i)) {
			t.Fatalf("BlockedGrid mismatch at %v", m.CoordOf(i))
		}
	}
}

func TestRandomFaults(t *testing.T) {
	m := mesh.Mesh{Width: 20, Height: 20}
	rng := rand.New(rand.NewSource(7))

	faults, err := RandomFaults(m, 50, rng, nil)
	if err != nil {
		t.Fatalf("RandomFaults: %v", err)
	}
	if len(faults) != 50 {
		t.Fatalf("got %d faults, want 50", len(faults))
	}
	seen := make(map[mesh.Coord]bool)
	for _, f := range faults {
		if !m.Contains(f) {
			t.Errorf("fault %v outside mesh", f)
		}
		if seen[f] {
			t.Errorf("duplicate fault %v", f)
		}
		seen[f] = true
	}

	center := m.Center()
	faults, err = RandomFaults(m, 30, rng, func(c mesh.Coord) bool { return c == center })
	if err != nil {
		t.Fatalf("RandomFaults with exclusion: %v", err)
	}
	for _, f := range faults {
		if f == center {
			t.Error("excluded node was selected")
		}
	}

	if _, err := RandomFaults(m, -1, rng, nil); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := RandomFaults(m, m.Size()+1, rng, nil); err == nil {
		t.Error("oversize count should fail")
	}
	if _, err := RandomFaults(m, 1, rng, func(mesh.Coord) bool { return true }); err == nil {
		t.Error("fully excluded mesh should fail")
	}
}

func TestRandomFaultsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, kRaw uint8) bool {
		m := mesh.Mesh{Width: 15, Height: 15}
		k := int(kRaw) % 40
		faults, err := RandomFaults(m, k, rand.New(rand.NewSource(seed)), nil)
		if err != nil || len(faults) != k {
			return false
		}
		seen := make(map[mesh.Coord]bool, k)
		for _, c := range faults {
			if !m.Contains(c) || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestClusteredFaults(t *testing.T) {
	m := mesh.Mesh{Width: 64, Height: 64}
	rng := rand.New(rand.NewSource(3))
	faults, err := ClusteredFaults(m, 60, 4, 3, rng, nil)
	if err != nil {
		t.Fatalf("ClusteredFaults: %v", err)
	}
	if len(faults) != 60 {
		t.Fatalf("got %d faults, want 60", len(faults))
	}
	seen := make(map[mesh.Coord]bool)
	for _, f := range faults {
		if !m.Contains(f) || seen[f] {
			t.Fatalf("bad fault %v", f)
		}
		seen[f] = true
	}
	// Clustered faults must produce much larger blocks than uniform
	// ones at the same count.
	sc, err := NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	clustered := BuildBlocks(sc)
	uni, err := RandomFaults(m, 60, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	scU, err := NewScenario(m, uni)
	if err != nil {
		t.Fatal(err)
	}
	uniform := BuildBlocks(scU)
	maxArea := func(bs *BlockSet) int {
		best := 0
		for _, b := range bs.Blocks {
			if a := b.Area(); a > best {
				best = a
			}
		}
		return best
	}
	if maxArea(clustered) <= maxArea(uniform) {
		t.Errorf("clustered max block %d not above uniform %d", maxArea(clustered), maxArea(uniform))
	}

	// Exclusion respected.
	center := m.Center()
	cf, err := ClusteredFaults(m, 30, 2, 4, rng, func(c mesh.Coord) bool { return c == center })
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range cf {
		if f == center {
			t.Error("excluded node selected")
		}
	}

	// Validation errors.
	if _, err := ClusteredFaults(m, -1, 2, 2, rng, nil); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := ClusteredFaults(m, 5, 0, 2, rng, nil); err == nil {
		t.Error("zero clusters should fail")
	}
	if _, err := ClusteredFaults(m, 5, 2, -1, rng, nil); err == nil {
		t.Error("negative spread should fail")
	}
	if _, err := ClusteredFaults(m, 10, 1, 0, rng, func(mesh.Coord) bool { return true }); err == nil {
		t.Error("full exclusion should fail")
	}
}
