package fault

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
)

func TestForQuadrant(t *testing.T) {
	tests := []struct {
		q    int
		want MCCType
	}{
		{1, TypeOne}, {2, TypeTwo}, {3, TypeOne}, {4, TypeTwo},
	}
	for _, tt := range tests {
		if got := ForQuadrant(tt.q); got != tt.want {
			t.Errorf("ForQuadrant(%d) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestMCCTypeString(t *testing.T) {
	if TypeOne.String() != "type-one" || TypeTwo.String() != "type-two" {
		t.Error("type names wrong")
	}
	if MCCType(9).String() != "unknown" {
		t.Error("unknown type name wrong")
	}
}

// TestBuildMCCPaperExample checks the per-node dual statuses discussed
// around Figure 1 of the paper for the eight-fault example. Note: the
// paper's prose lists (4,3) as fault-free under both labelings, but by
// the letter of Definition 2 its north neighbor (4,4) and west neighbor
// (3,3) are faulty, which makes it useless for quadrant-II routing (and
// can't-reach under the quadrant-IV derivation), so it belongs to the
// type-two MCC; we follow the definition. The remaining three published
// examples match the definition and are asserted here.
func TestBuildMCCPaperExample(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	s := mustScenario(t, m, paperFaults)
	one := BuildMCC(s, TypeOne)
	two := BuildMCC(s, TypeTwo)

	tests := []struct {
		c       mesh.Coord
		inOne   bool
		inTwo   bool
		comment string
	}{
		{mesh.Coord{X: 2, Y: 6}, false, true, "NW corner: removed by type-one, kept by type-two"},
		{mesh.Coord{X: 4, Y: 5}, true, true, "interior notch: disabled under both"},
		{mesh.Coord{X: 2, Y: 3}, true, false, "SW corner: kept by type-one, removed by type-two"},
		{mesh.Coord{X: 1, Y: 4}, false, false, "outside the block entirely"},
		{mesh.Coord{X: 3, Y: 3}, true, true, "faulty node is always a member"},
	}
	for _, tt := range tests {
		if got := one.InMCC(tt.c); got != tt.inOne {
			t.Errorf("type-one InMCC(%v) = %v, want %v (%s)", tt.c, got, tt.inOne, tt.comment)
		}
		if got := two.InMCC(tt.c); got != tt.inTwo {
			t.Errorf("type-two InMCC(%v) = %v, want %v (%s)", tt.c, got, tt.inTwo, tt.comment)
		}
	}

	// (4,3) has faulty north and west neighbors: not in the type-one
	// MCC (east neighbor (5,3) is free), in the type-two MCC.
	c := mesh.Coord{X: 4, Y: 3}
	if one.InMCC(c) {
		t.Errorf("(4,3) should not be in the type-one MCC")
	}
	if !two.InMCC(c) {
		t.Errorf("(4,3) should be in the type-two MCC (faulty N and W neighbors)")
	}
}

func TestBuildMCCLabels(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	s := mustScenario(t, m, paperFaults)
	one := BuildMCC(s, TypeOne)

	// (2,4): north (2,5) and east (3,4) faulty => useless.
	if !one.IsUseless(mesh.Coord{X: 2, Y: 4}) {
		t.Error("(2,4) should be useless under type-one")
	}
	// (3,5): south (3,4) faulty, west (2,5) faulty => can't-reach.
	if !one.IsCantReach(mesh.Coord{X: 3, Y: 5}) {
		t.Error("(3,5) should be can't-reach under type-one")
	}
	// Faulty nodes carry neither derived label.
	if one.IsUseless(mesh.Coord{X: 3, Y: 3}) || one.IsCantReach(mesh.Coord{X: 3, Y: 3}) {
		t.Error("faulty node should not be labeled useless/can't-reach")
	}
	// Far away nodes carry no label.
	if one.IsUseless(mesh.Coord{X: 0, Y: 0}) || one.IsCantReach(mesh.Coord{X: 0, Y: 0}) {
		t.Error("distant node labeled")
	}
	// Out-of-mesh lookups are safe.
	out := mesh.Coord{X: -1, Y: -1}
	if one.InMCC(out) || one.IsUseless(out) || one.IsCantReach(out) || one.ComponentAt(out) != -1 {
		t.Error("out-of-mesh lookups should be inert")
	}
}

func TestBuildMCCNoFaults(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	ms := BuildMCC(mustScenario(t, m, nil), TypeOne)
	if len(ms.Comps) != 0 || ms.DisabledCount() != 0 {
		t.Errorf("MCC of fault-free mesh not empty: %d comps, %d disabled", len(ms.Comps), ms.DisabledCount())
	}
}

// TestMCCSubsetOfBlocks verifies the refinement property: every MCC
// node is contained in some faulty block (MCCs only ever shrink blocks)
// and every fault is in an MCC.
func TestMCCSubsetOfBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		w := 10 + rng.Intn(20)
		h := 10 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := RandomFaults(m, rng.Intn(m.Size()/8), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		s := mustScenario(t, m, faults)
		bs := BuildBlocks(s)
		for _, typ := range []MCCType{TypeOne, TypeTwo} {
			ms := BuildMCC(s, typ)
			for i := 0; i < m.Size(); i++ {
				c := m.CoordOf(i)
				if ms.InMCC(c) && !bs.InBlock(c) {
					t.Fatalf("trial %d: %v MCC node %v outside every faulty block", trial, typ, c)
				}
			}
			for _, f := range faults {
				if !ms.InMCC(f) {
					t.Fatalf("trial %d: fault %v not in any %v MCC", trial, f, typ)
				}
			}
			if ms.DisabledCount() > bs.DisabledCount() {
				t.Fatalf("trial %d: %v MCC disabled %d > block disabled %d", trial, typ, ms.DisabledCount(), bs.DisabledCount())
			}
		}
	}
}

// TestMCCComponentsConsistent checks that component bookkeeping matches
// the per-node flags and that extents cover their nodes.
func TestMCCComponentsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m := mesh.Mesh{Width: 16, Height: 16}
		faults, err := RandomFaults(m, rng.Intn(30), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		s := mustScenario(t, m, faults)
		ms := BuildMCC(s, TypeOne)

		total := 0
		for ci, comp := range ms.Comps {
			total += len(comp.Nodes)
			for _, c := range comp.Nodes {
				if !comp.Extent.Contains(c) {
					t.Fatalf("node %v outside its component extent %v", c, comp.Extent)
				}
				if ms.ComponentAt(c) != ci {
					t.Fatalf("ComponentAt(%v) = %d, want %d", c, ms.ComponentAt(c), ci)
				}
				if !ms.InMCC(c) {
					t.Fatalf("component node %v not flagged", c)
				}
			}
		}
		flagged := 0
		for i := 0; i < m.Size(); i++ {
			if ms.InMCC(m.CoordOf(i)) {
				flagged++
			}
		}
		if total != flagged {
			t.Fatalf("component nodes %d != flagged nodes %d", total, flagged)
		}
		g := ms.BlockedGrid()
		for i := range g {
			if g[i] != ms.InMCC(m.CoordOf(i)) {
				t.Fatalf("BlockedGrid mismatch at %v", m.CoordOf(i))
			}
		}
		if got := len(ms.Extents()); got != len(ms.Comps) {
			t.Fatalf("Extents count %d != comps %d", got, len(ms.Comps))
		}
	}
}

// TestMCCFixpoint verifies no fault-free node still satisfies a
// labeling premise after construction (the rules were iterated to
// fixpoint).
func TestMCCFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		m := mesh.Mesh{Width: 14, Height: 14}
		faults, err := RandomFaults(m, rng.Intn(25), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		s := mustScenario(t, m, faults)
		ms := BuildMCC(s, TypeOne)

		uselessOrFaulty := func(c mesh.Coord) bool {
			return s.IsFaulty(c) || ms.IsUseless(c)
		}
		cantOrFaulty := func(c mesh.Coord) bool {
			return s.IsFaulty(c) || ms.IsCantReach(c)
		}
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if s.IsFaulty(c) {
				continue
			}
			n := mesh.Coord{X: c.X, Y: c.Y + 1}
			e := mesh.Coord{X: c.X + 1, Y: c.Y}
			so := mesh.Coord{X: c.X, Y: c.Y - 1}
			w := mesh.Coord{X: c.X - 1, Y: c.Y}
			if m.Contains(n) && m.Contains(e) && uselessOrFaulty(n) && uselessOrFaulty(e) && !ms.IsUseless(c) {
				t.Fatalf("trial %d: %v satisfies useless premise but unlabeled", trial, c)
			}
			if m.Contains(so) && m.Contains(w) && cantOrFaulty(so) && cantOrFaulty(w) && !ms.IsCantReach(c) {
				t.Fatalf("trial %d: %v satisfies can't-reach premise but unlabeled", trial, c)
			}
		}
	}
}

// TestMCCQuadrantDualitySameSets verifies the paper's remark that the
// MCCs generated for quadrants II and IV coincide: deriving the
// quadrant-IV labeling (exchange useless and can't-reach roles from
// quadrant II) yields the same member set as TypeTwo.
func TestMCCQuadrantDualitySameSets(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		m := mesh.Mesh{Width: 14, Height: 14}
		faults, err := RandomFaults(m, rng.Intn(25), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		s := mustScenario(t, m, faults)
		two := BuildMCC(s, TypeTwo)

		// Quadrant-IV labeling computed from first principles: useless
		// if east & south blocked, can't-reach if west & north blocked.
		qfour := &MCCSet{
			M:       m,
			Type:    TypeTwo,
			flags:   make([]uint8, m.Size()),
			compIdx: make([]int32, m.Size()),
		}
		for i := range qfour.compIdx {
			qfour.compIdx[i] = -1
		}
		for _, f := range faults {
			qfour.flags[m.Index(f)] |= flagFaulty
		}
		qfour.propagate(flagUseless, mesh.East, mesh.South)
		qfour.propagate(flagCantReach, mesh.West, mesh.North)

		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if two.InMCC(c) != (qfour.flags[i] != 0) {
				t.Fatalf("trial %d: quadrant II vs IV MCC membership differs at %v", trial, c)
			}
		}
	}
}
