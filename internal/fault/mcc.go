package fault

import (
	"extmesh/internal/mesh"
)

// MCCType selects which minimal-connected-component labeling applies.
// Type-one MCCs serve routings whose destination lies in quadrant I or
// III of the source; type-two MCCs serve quadrants II and IV
// (Definition 2 and the derived labelings in the paper).
type MCCType uint8

// The two MCC labelings.
const (
	TypeOne MCCType = iota + 1 // quadrant I / III destinations
	TypeTwo                    // quadrant II / IV destinations
)

// String names the MCC type.
func (t MCCType) String() string {
	switch t {
	case TypeOne:
		return "type-one"
	case TypeTwo:
		return "type-two"
	default:
		return "unknown"
	}
}

// ForQuadrant returns the MCC type that applies when the destination is
// in the given quadrant (1..4) of the source.
func ForQuadrant(q int) MCCType {
	if q == 2 || q == 4 {
		return TypeTwo
	}
	return TypeOne
}

// Node flag bits used internally by MCCSet.
const (
	flagFaulty uint8 = 1 << iota
	flagUseless
	flagCantReach
)

// MCCComponent is one minimal connected component: a rectilinear-
// monotone polygonal region of faulty, useless and can't-reach nodes.
type MCCComponent struct {
	Extent mesh.Rect    // bounding rectangle of the component
	Nodes  []mesh.Coord // all member nodes
}

// MCCSet is the result of one MCC labeling over a scenario.
type MCCSet struct {
	M     mesh.Mesh
	Type  MCCType
	Comps []MCCComponent

	flags   []uint8
	compIdx []int32

	// scratch buffers reused across BuildMCCInto calls
	queue []mesh.Coord
	nbuf  []mesh.Coord
}

// BuildMCC applies the labeling of Definition 2 (or its quadrant-II/IV
// mirror) to a scenario. For TypeOne and a quadrant-I destination:
// a fault-free node whose north and east neighbors are both faulty or
// useless becomes useless (entering it forces a west or south move);
// a fault-free node whose south and west neighbors are both faulty or
// can't-reach becomes can't-reach (entering it requires a west or south
// move). Both rules are iterated to fixpoint; connected faulty, useless
// and can't-reach nodes form the MCCs. Neighbors outside the mesh do
// not block.
func BuildMCC(s *Scenario, t MCCType) *MCCSet {
	return BuildMCCInto(nil, s, t)
}

// BuildMCCInto is the arena form of BuildMCC: it runs the same labeling
// into dst, reusing dst's grids, worklists and component storage
// (including each component's node list backing) when they are large
// enough; a nil dst allocates a fresh set. All previous results read
// from dst — flags, component indices, the Comps slice and the Nodes
// slices inside it — are invalidated.
func BuildMCCInto(dst *MCCSet, s *Scenario, t MCCType) *MCCSet {
	m := s.M
	ms := dst
	if ms == nil {
		ms = &MCCSet{}
	}
	ms.M = m
	ms.Type = t
	if cap(ms.flags) < m.Size() {
		ms.flags = make([]uint8, m.Size())
	} else {
		ms.flags = ms.flags[:m.Size()]
		clear(ms.flags)
	}
	if cap(ms.compIdx) < m.Size() {
		ms.compIdx = make([]int32, m.Size())
	} else {
		ms.compIdx = ms.compIdx[:m.Size()]
	}
	ms.Comps = ms.Comps[:0]
	for i := range ms.compIdx {
		ms.compIdx[i] = -1
	}
	for _, f := range s.Faults {
		ms.flags[m.Index(f)] |= flagFaulty
	}

	// Direction pairs for the two rules. "Ahead" neighbors make a node
	// useless, "behind" neighbors make it can't-reach. For type-one
	// (quadrant I: +X/+Y moves) ahead = {E, N}, behind = {W, S}; for
	// type-two (quadrant II: -X/+Y moves) ahead = {W, N}, behind = {E, S}.
	aheadX, behindX := mesh.East, mesh.West
	if t == TypeTwo {
		aheadX, behindX = mesh.West, mesh.East
	}
	ms.propagate(flagUseless, aheadX, mesh.North)
	ms.propagate(flagCantReach, behindX, mesh.South)

	ms.collectComponents()
	return ms
}

// propagate iterates one labeling rule (flag set when both the dx and
// dy neighbors carry flagFaulty or flag) to fixpoint with a worklist.
func (ms *MCCSet) propagate(flag uint8, dx, dy mesh.Dir) {
	m := ms.M
	mask := flagFaulty | flag
	blocked := func(c mesh.Coord) bool {
		if !m.Contains(c) {
			return false
		}
		return ms.flags[m.Index(c)]&mask != 0
	}
	// Seed the worklist with nodes adjacent to faults: only they can
	// satisfy the premise initially.
	queue := ms.queue[:0]
	for i, f := range ms.flags {
		if f&flagFaulty != 0 {
			queue = m.Neighbors(queue, m.CoordOf(i))
		}
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		i := m.Index(c)
		if ms.flags[i]&mask != 0 { // already faulty or labeled
			continue
		}
		if !blocked(c.Add(dx.Offset())) || !blocked(c.Add(dy.Offset())) {
			continue
		}
		ms.flags[i] |= flag
		// Only the opposite-side neighbors can newly satisfy the rule.
		for _, n := range []mesh.Coord{c.Add(dx.Opposite().Offset()), c.Add(dy.Opposite().Offset())} {
			if m.Contains(n) {
				queue = append(queue, n)
			}
		}
	}
	ms.queue = queue[:0]
}

// collectComponents groups connected flagged nodes into MCCs.
func (ms *MCCSet) collectComponents() {
	m := ms.M
	stack := ms.queue[:0]
	nbuf := ms.nbuf
	for start := 0; start < m.Size(); start++ {
		if ms.flags[start] == 0 || ms.compIdx[start] >= 0 {
			continue
		}
		id := int32(len(ms.Comps))
		// Extend within capacity when possible so a reused set keeps the
		// node-list backing of the component previously stored here.
		if len(ms.Comps) < cap(ms.Comps) {
			ms.Comps = ms.Comps[:id+1]
		} else {
			ms.Comps = append(ms.Comps, MCCComponent{})
		}
		comp := &ms.Comps[id]
		comp.Extent = mesh.RectAround(m.CoordOf(start))
		comp.Nodes = comp.Nodes[:0]
		stack = append(stack[:0], m.CoordOf(start))
		ms.compIdx[start] = id
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp.Extent = comp.Extent.Union(mesh.RectAround(c))
			comp.Nodes = append(comp.Nodes, c)
			nbuf = m.Neighbors(nbuf[:0], c)
			for _, n := range nbuf {
				ni := m.Index(n)
				if ms.flags[ni] != 0 && ms.compIdx[ni] < 0 {
					ms.compIdx[ni] = id
					stack = append(stack, n)
				}
			}
		}
	}
	ms.queue = stack[:0]
	ms.nbuf = nbuf
}

// InMCC reports whether c belongs to some MCC under this labeling.
func (ms *MCCSet) InMCC(c mesh.Coord) bool {
	if !ms.M.Contains(c) {
		return false
	}
	return ms.flags[ms.M.Index(c)] != 0
}

// IsUseless reports whether c carries the useless label.
func (ms *MCCSet) IsUseless(c mesh.Coord) bool {
	if !ms.M.Contains(c) {
		return false
	}
	return ms.flags[ms.M.Index(c)]&flagUseless != 0
}

// IsCantReach reports whether c carries the can't-reach label.
func (ms *MCCSet) IsCantReach(c mesh.Coord) bool {
	if !ms.M.Contains(c) {
		return false
	}
	return ms.flags[ms.M.Index(c)]&flagCantReach != 0
}

// ComponentAt returns the index of the MCC containing c, or -1.
func (ms *MCCSet) ComponentAt(c mesh.Coord) int {
	if !ms.M.Contains(c) {
		return -1
	}
	return int(ms.compIdx[ms.M.Index(c)])
}

// DisabledCount returns the number of non-faulty nodes swallowed by
// MCCs (useless or can't-reach but not faulty).
func (ms *MCCSet) DisabledCount() int {
	n := 0
	for _, f := range ms.flags {
		if f != 0 && f&flagFaulty == 0 {
			n++
		}
	}
	return n
}

// BlockedGrid returns a fresh boolean grid that is true for every MCC
// member node.
func (ms *MCCSet) BlockedGrid() []bool {
	return ms.BlockedGridInto(nil)
}

// BlockedGridInto is the arena form of BlockedGrid: it fills g (reusing
// its backing when large enough; nil allocates) and returns the filled
// grid.
func (ms *MCCSet) BlockedGridInto(g []bool) []bool {
	if cap(g) < len(ms.flags) {
		g = make([]bool, len(ms.flags))
	} else {
		g = g[:len(ms.flags)]
	}
	for i, f := range ms.flags {
		g[i] = f != 0
	}
	return g
}

// Extents returns the bounding rectangles of all components. These play
// the role of the block list for Wang's coverage condition under the
// MCC model.
func (ms *MCCSet) Extents() []mesh.Rect {
	rects := make([]mesh.Rect, len(ms.Comps))
	for i, c := range ms.Comps {
		rects[i] = c.Extent
	}
	return rects
}
