package fault

import (
	"testing"

	"extmesh/internal/mesh"
)

// FuzzBlockLabeling drives the faulty-block construction with
// arbitrary fault patterns (each byte seeds one fault position in a
// 12x12 mesh) and checks the structural invariants: blocks are filled
// rectangles, pairwise consistent with the per-node status, and MCCs
// stay inside them.
func FuzzBlockLabeling(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 13, 26, 39})
	f.Add([]byte{17, 30, 31, 44, 18})
	f.Add([]byte{255, 254, 253, 128, 64, 32, 16, 8, 4, 2, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := mesh.Mesh{Width: 12, Height: 12}
		seen := make(map[mesh.Coord]bool)
		var faults []mesh.Coord
		for _, b := range data {
			c := m.CoordOf(int(b) % m.Size())
			if !seen[c] {
				seen[c] = true
				faults = append(faults, c)
			}
		}
		sc, err := NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := BuildBlocks(sc)
		for bi, r := range bs.Blocks {
			for y := r.MinY; y <= r.MaxY; y++ {
				for x := r.MinX; x <= r.MaxX; x++ {
					c := mesh.Coord{X: x, Y: y}
					if !bs.InBlock(c) || bs.BlockAt(c) != bi {
						t.Fatalf("block %v not a filled rectangle at %v", r, c)
					}
				}
			}
		}
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if !bs.InBlock(c) && bs.shouldDisable(c) {
				t.Fatalf("not a fixpoint at %v", c)
			}
		}
		for _, typ := range []MCCType{TypeOne, TypeTwo} {
			ms := BuildMCC(sc, typ)
			for i := 0; i < m.Size(); i++ {
				c := m.CoordOf(i)
				if ms.InMCC(c) && !bs.InBlock(c) {
					t.Fatalf("%v MCC node %v escapes its block", typ, c)
				}
			}
			for _, fc := range faults {
				if !ms.InMCC(fc) {
					t.Fatalf("fault %v missing from %v MCC", fc, typ)
				}
			}
		}
	})
}
