package fault

import (
	"extmesh/internal/mesh"
)

// Status is the label of a node under the faulty block model
// (Definition 1 in the paper).
type Status uint8

// Node statuses under the block fault model. Enabled is the zero value
// because a fault-free, non-deactivated node is the default state.
const (
	Enabled  Status = iota // non-faulty node outside every faulty block
	Faulty                 // physically faulty node
	Disabled               // non-faulty node deactivated by the labeling
)

// String returns a short human-readable status name.
func (s Status) String() string {
	switch s {
	case Enabled:
		return "enabled"
	case Faulty:
		return "faulty"
	case Disabled:
		return "disabled"
	default:
		return "unknown"
	}
}

// BlockSet is the result of the faulty-block construction: per-node
// status and the list of disjoint rectangular blocks.
type BlockSet struct {
	M      mesh.Mesh
	Blocks []mesh.Rect

	status   []Status
	blockIdx []int32 // index into Blocks, -1 for enabled nodes

	// scratch buffers reused across BuildBlocksInto calls
	queue []mesh.Coord
	nbuf  []mesh.Coord
}

// BuildBlocks applies Definition 1 to the scenario: a non-faulty node
// becomes disabled if it has two or more disabled-or-faulty neighbors
// in different dimensions; the rule is applied until a fixpoint is
// reached. Connected faulty and disabled nodes then form the faulty
// blocks, each of which is a rectangle.
func BuildBlocks(s *Scenario) *BlockSet {
	return BuildBlocksInto(nil, s)
}

// BuildBlocksInto is the arena form of BuildBlocks: it runs the same
// labeling into dst, reusing dst's grids and worklists when they are
// large enough (a nil dst allocates a fresh set), and returns the set
// it filled. All previous results read from dst (statuses, block
// indices, the Blocks slice) are invalidated.
func BuildBlocksInto(dst *BlockSet, s *Scenario) *BlockSet {
	m := s.M
	bs := dst
	if bs == nil {
		bs = &BlockSet{}
	}
	bs.M = m
	if cap(bs.status) < m.Size() {
		bs.status = make([]Status, m.Size())
	} else {
		bs.status = bs.status[:m.Size()]
		clear(bs.status)
	}
	if cap(bs.blockIdx) < m.Size() {
		bs.blockIdx = make([]int32, m.Size())
	} else {
		bs.blockIdx = bs.blockIdx[:m.Size()]
	}
	for i := range bs.blockIdx {
		bs.blockIdx[i] = -1
	}
	bs.Blocks = bs.Blocks[:0]
	for _, f := range s.Faults {
		bs.status[m.Index(f)] = Faulty
	}

	// Fixpoint labeling with a worklist: when a node becomes disabled,
	// only its neighbors can newly satisfy the premise.
	queue := bs.queue[:0]
	for _, f := range s.Faults {
		queue = m.Neighbors(queue, f)
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		i := m.Index(c)
		if bs.status[i] != Enabled {
			continue
		}
		if !bs.shouldDisable(c) {
			continue
		}
		bs.status[i] = Disabled
		queue = m.Neighbors(queue, c)
	}
	bs.queue = queue[:0]

	bs.collectBlocks()
	return bs
}

// shouldDisable implements the premise of Definition 1: two or more
// disabled-or-faulty neighbors in different dimensions. Neighbors
// outside the mesh do not count.
func (bs *BlockSet) shouldDisable(c mesh.Coord) bool {
	badX := bs.dead(mesh.Coord{X: c.X - 1, Y: c.Y}) || bs.dead(mesh.Coord{X: c.X + 1, Y: c.Y})
	badY := bs.dead(mesh.Coord{X: c.X, Y: c.Y - 1}) || bs.dead(mesh.Coord{X: c.X, Y: c.Y + 1})
	return badX && badY
}

// dead reports whether c is a faulty or disabled node inside the mesh.
func (bs *BlockSet) dead(c mesh.Coord) bool {
	if !bs.M.Contains(c) {
		return false
	}
	return bs.status[bs.M.Index(c)] != Enabled
}

// collectBlocks finds the connected components of faulty/disabled nodes
// and records each component's bounding rectangle. For the fixpoint of
// Definition 1 each component exactly fills its bounding rectangle
// (verified by tests), so the rectangle is the faulty block.
func (bs *BlockSet) collectBlocks() {
	m := bs.M
	stack := bs.queue[:0]
	nbuf := bs.nbuf
	for start := 0; start < m.Size(); start++ {
		if bs.status[start] == Enabled || bs.blockIdx[start] >= 0 {
			continue
		}
		id := int32(len(bs.Blocks))
		rect := mesh.RectAround(m.CoordOf(start))
		stack = append(stack[:0], m.CoordOf(start))
		bs.blockIdx[start] = id
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			rect = rect.Union(mesh.RectAround(c))
			nbuf = m.Neighbors(nbuf[:0], c)
			for _, n := range nbuf {
				ni := m.Index(n)
				if bs.status[ni] != Enabled && bs.blockIdx[ni] < 0 {
					bs.blockIdx[ni] = id
					stack = append(stack, n)
				}
			}
		}
		bs.Blocks = append(bs.Blocks, rect)
	}
	bs.queue = stack[:0]
	bs.nbuf = nbuf
}

// Status returns the node's label under the block model. Nodes outside
// the mesh report Enabled.
func (bs *BlockSet) Status(c mesh.Coord) Status {
	if !bs.M.Contains(c) {
		return Enabled
	}
	return bs.status[bs.M.Index(c)]
}

// InBlock reports whether c belongs to a faulty block (is faulty or
// disabled).
func (bs *BlockSet) InBlock(c mesh.Coord) bool {
	return bs.Status(c) != Enabled
}

// BlockAt returns the index of the block containing c, or -1.
func (bs *BlockSet) BlockAt(c mesh.Coord) int {
	if !bs.M.Contains(c) {
		return -1
	}
	return int(bs.blockIdx[bs.M.Index(c)])
}

// DisabledCount returns the number of disabled (non-faulty) nodes.
func (bs *BlockSet) DisabledCount() int {
	n := 0
	for _, st := range bs.status {
		if st == Disabled {
			n++
		}
	}
	return n
}

// BlockedGrid returns a fresh boolean grid (indexed by mesh.Index) that
// is true for every node inside a faulty block. This is the "blocked
// set" the safety-level and routing layers consume.
func (bs *BlockSet) BlockedGrid() []bool {
	return bs.BlockedGridInto(nil)
}

// BlockedGridInto is the arena form of BlockedGrid: it fills g (reusing
// its backing when large enough; nil allocates) and returns the filled
// grid.
func (bs *BlockSet) BlockedGridInto(g []bool) []bool {
	if cap(g) < len(bs.status) {
		g = make([]bool, len(bs.status))
	} else {
		g = g[:len(bs.status)]
	}
	for i, st := range bs.status {
		g[i] = st != Enabled
	}
	return g
}

// AdjacentToBlock reports whether enabled node c has at least one
// neighbor inside a faulty block (the paper's "adjacent node").
func (bs *BlockSet) AdjacentToBlock(c mesh.Coord) bool {
	if bs.InBlock(c) {
		return false
	}
	var nbuf [4]mesh.Coord
	for _, n := range bs.M.Neighbors(nbuf[:0], c) {
		if bs.InBlock(n) {
			return true
		}
	}
	return false
}
