// Package fault implements the paper's two fault models on a 2-D mesh:
// Wu's rectangular faulty blocks (Definition 1) and Wang's
// minimal-connected-components, MCCs (Definition 2). It also provides
// seeded random fault injection for the simulation workloads.
package fault

import (
	"fmt"
	"math/rand"

	"extmesh/internal/mesh"
)

// Scenario couples a mesh with a set of faulty nodes. It is the input
// to both fault-model constructions.
type Scenario struct {
	M      mesh.Mesh
	Faults []mesh.Coord

	faulty []bool // indexed by mesh.Index
}

// NewScenario validates the fault set against the mesh and returns a
// scenario. Duplicate faults are rejected so that fault counts in the
// simulation are exact.
func NewScenario(m mesh.Mesh, faults []mesh.Coord) (*Scenario, error) {
	if m.Width <= 0 || m.Height <= 0 {
		return nil, fmt.Errorf("fault: invalid mesh %v", m)
	}
	s := &Scenario{M: m}
	if err := s.Reset(faults); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset replaces the scenario's fault set in place, reusing the faulty
// grid and fault-list backing so that one scenario can serve many fault
// configurations over the same mesh without reallocating. It performs
// the same validation as NewScenario; on error the scenario is left
// with an empty fault set.
func (s *Scenario) Reset(faults []mesh.Coord) error {
	m := s.M
	if cap(s.faulty) < m.Size() {
		s.faulty = make([]bool, m.Size())
	} else {
		s.faulty = s.faulty[:m.Size()]
		clear(s.faulty)
	}
	s.Faults = append(s.Faults[:0], faults...)
	for _, f := range faults {
		if !m.Contains(f) {
			s.Faults = s.Faults[:0]
			clear(s.faulty)
			return fmt.Errorf("fault: node %v outside mesh %v", f, m)
		}
		i := m.Index(f)
		if s.faulty[i] {
			s.Faults = s.Faults[:0]
			clear(s.faulty)
			return fmt.Errorf("fault: duplicate faulty node %v", f)
		}
		s.faulty[i] = true
	}
	return nil
}

// IsFaulty reports whether c is a faulty node. Nodes outside the mesh
// are not faulty.
func (s *Scenario) IsFaulty(c mesh.Coord) bool {
	if !s.M.Contains(c) {
		return false
	}
	return s.faulty[s.M.Index(c)]
}

// FaultCount returns the number of faulty nodes.
func (s *Scenario) FaultCount() int {
	return len(s.Faults)
}

// RandomFaults draws k distinct faulty nodes uniformly from the mesh,
// skipping nodes for which exclude returns true (exclude may be nil).
// It returns an error if fewer than k eligible nodes exist.
func RandomFaults(m mesh.Mesh, k int, rng *rand.Rand, exclude func(mesh.Coord) bool) ([]mesh.Coord, error) {
	if k < 0 {
		return nil, fmt.Errorf("fault: negative fault count %d", k)
	}
	if k > m.Size() {
		return nil, fmt.Errorf("fault: %d faults exceed mesh size %d", k, m.Size())
	}
	taken := make(map[mesh.Coord]bool, k)
	faults := make([]mesh.Coord, 0, k)
	// Rejection sampling is efficient because the simulations keep the
	// fault density low (<= 200 faults in 40000 nodes). Guard against a
	// pathological exclude with an attempt budget.
	maxAttempts := 100 * (k + 1) * 10
	for attempts := 0; len(faults) < k; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("fault: could not place %d faults (placed %d); exclusion too strict", k, len(faults))
		}
		c := mesh.Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)}
		if taken[c] || (exclude != nil && exclude(c)) {
			continue
		}
		taken[c] = true
		faults = append(faults, c)
	}
	return faults, nil
}

// ClusteredFaults draws k distinct faulty nodes grouped around
// `clusters` uniformly-placed centers: each fault picks a random
// center and a position displaced by a geometric-ish spread in each
// axis. Clustered faults form much larger faulty blocks than uniform
// ones, stressing the block construction and the routing conditions
// beyond the paper's uniform workload. exclude may be nil.
func ClusteredFaults(m mesh.Mesh, k, clusters, spread int, rng *rand.Rand, exclude func(mesh.Coord) bool) ([]mesh.Coord, error) {
	if k < 0 || k > m.Size() {
		return nil, fmt.Errorf("fault: fault count %d out of range", k)
	}
	if clusters <= 0 || spread < 0 {
		return nil, fmt.Errorf("fault: need positive clusters and non-negative spread")
	}
	centers := make([]mesh.Coord, clusters)
	for i := range centers {
		centers[i] = mesh.Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)}
	}
	jitter := func() int {
		// Sum of two uniforms gives a triangular displacement.
		return rng.Intn(spread+1) + rng.Intn(spread+1) - spread
	}
	taken := make(map[mesh.Coord]bool, k)
	faults := make([]mesh.Coord, 0, k)
	maxAttempts := 1000 * (k + 1)
	for attempts := 0; len(faults) < k; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("fault: could not place %d clustered faults (placed %d)", k, len(faults))
		}
		c := centers[rng.Intn(clusters)]
		p := mesh.Coord{X: c.X + jitter(), Y: c.Y + jitter()}
		if !m.Contains(p) || taken[p] || (exclude != nil && exclude(p)) {
			continue
		}
		taken[p] = true
		faults = append(faults, p)
	}
	return faults, nil
}
