package analytic

import (
	"math"
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

func TestExpectedAffectedEdgeCases(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{0, 10, 0},
		{10, 0, 0},
		{10, -1, 0},
		{-1, 5, 0},
	}
	for _, tt := range tests {
		if got := ExpectedAffected(tt.n, tt.k); got != tt.want {
			t.Errorf("ExpectedAffected(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestExpectedAffectedBounds(t *testing.T) {
	for n := 1; n <= 250; n += 13 {
		prev := 0.0
		for k := 1; k <= 2*n; k++ {
			v := ExpectedAffected(n, k)
			if v < 0 || v > float64(n) {
				t.Fatalf("ExpectedAffected(%d,%d) = %v out of [0,%d]", n, k, v, n)
			}
			if v > float64(k) {
				t.Fatalf("ExpectedAffected(%d,%d) = %v exceeds k", n, k, v)
			}
			if v+1e-9 < prev {
				t.Fatalf("ExpectedAffected(%d,%d) = %v not monotone (prev %v)", n, k, v, prev)
			}
			prev = v
		}
	}
}

func TestExpectedAffectedFirstFault(t *testing.T) {
	// The first fault always hits a clean row.
	if got := ExpectedAffected(100, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("ExpectedAffected(100,1) = %v, want 1", got)
	}
}

func TestExpectedAffectedPaperValues(t *testing.T) {
	// Figure 7 for n=200: about 20% affected at k=50, 40% at k=100,
	// 60% at k=200 (the paper's reading of its own plot).
	tests := []struct {
		k    int
		want float64
		tol  float64
	}{
		{50, 0.20, 0.04},
		{100, 0.40, 0.04},
		{200, 0.60, 0.05},
	}
	for _, tt := range tests {
		got := ExpectedAffectedFraction(200, tt.k)
		if math.Abs(got-tt.want) > tt.tol {
			t.Errorf("fraction(200,%d) = %.3f, want %.2f±%.2f", tt.k, got, tt.want, tt.tol)
		}
	}
}

// TestAnalyticMatchesSimulation reproduces the agreement shown in
// Figure 7: the analytical expectation stays close to the simulated
// number of affected rows, and the count is identical under the block
// and MCC models (disabled nodes never hit a clean row or column).
func TestAnalyticMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 100
	m := mesh.Mesh{Width: n, Height: n}
	for _, k := range []int{10, 40, 80} {
		const trials = 30
		sumRows := 0
		for trial := 0; trial < trials; trial++ {
			faults, err := fault.RandomFaults(m, k, rng, nil)
			if err != nil {
				t.Fatalf("RandomFaults: %v", err)
			}
			sc, err := fault.NewScenario(m, faults)
			if err != nil {
				t.Fatalf("NewScenario: %v", err)
			}
			bs := fault.BuildBlocks(sc)
			rows := safety.AffectedRows(m, bs.BlockedGrid())
			cols := safety.AffectedCols(m, bs.BlockedGrid())
			sumRows += rows + cols

			// Theorem 2's remark: the MCC model affects the same rows.
			mcc := fault.BuildMCC(sc, fault.TypeOne)
			if got := safety.AffectedRows(m, mcc.BlockedGrid()); got != rows {
				t.Fatalf("k=%d: MCC affected rows %d != block %d", k, got, rows)
			}
		}
		avg := float64(sumRows) / float64(2*trials)
		want := ExpectedAffected(n, k)
		if math.Abs(avg-want) > 0.12*float64(n) {
			t.Errorf("k=%d: simulated %.1f vs analytic %.1f rows", k, avg, want)
		}
	}
}

func TestExpectedAffectedSaturation(t *testing.T) {
	// Far beyond the coupon-collector total, every row is hit.
	n := 20
	if got := ExpectedAffected(n, 100000); got != float64(n) {
		t.Errorf("saturated ExpectedAffected = %v, want %d", got, n)
	}
	if got := ExpectedAffectedFraction(n, 100000); got != 1.0 {
		t.Errorf("saturated fraction = %v, want 1", got)
	}
	if got := ExpectedAffectedFraction(0, 5); got != 0 {
		t.Errorf("fraction with n=0 = %v, want 0", got)
	}
	if got := ExpectedAffectedFraction(200, 50); got <= 0 || got >= 1 {
		t.Errorf("mid fraction = %v out of (0,1)", got)
	}
}
