// Package analytic implements the paper's analytical model (Theorem 2)
// for the expected number of affected rows and columns — rows/columns
// that intersect at least one fault region — in an n x n mesh with k
// randomly placed faults.
package analytic

// ExpectedAffected returns the expected number of affected rows (and,
// by symmetry, columns) of an n x n 2-D mesh with k random faults,
// following Theorem 2: the x-th newly-hit row arrives after a
// geometrically distributed number of faults with mean n/(n-x+1), so
// the expectation is the largest x whose cumulative mean stays within
// k:
//
//	E[x] = min{ x : sum_{i=1..x} n/(n-i+1) >= k }
//
// capped at min(k, n). The result is returned as a float64 computed by
// linear interpolation between the bracketing integers so the curve is
// smooth, matching the analytical plot of Figure 7.
func ExpectedAffected(n, k int) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	if k >= couponTotal(n) {
		return float64(n)
	}
	sum := 0.0
	for x := 1; x <= n; x++ {
		next := sum + float64(n)/float64(n-x+1)
		if next >= float64(k) {
			// Interpolate within the x-th stage.
			frac := (float64(k) - sum) / (next - sum)
			v := float64(x-1) + frac
			if v > float64(k) {
				v = float64(k)
			}
			return v
		}
		sum = next
	}
	return float64(n)
}

// ExpectedAffectedFraction returns ExpectedAffected normalized by n,
// the percentage plotted in Figure 7.
func ExpectedAffectedFraction(n, k int) float64 {
	if n <= 0 {
		return 0
	}
	return ExpectedAffected(n, k) / float64(n)
}

// couponTotal returns the expected number of faults needed to hit every
// row once (the full coupon-collector sum), used as the saturation
// bound.
func couponTotal(n int) int {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += float64(n) / float64(n-i+1)
	}
	return int(sum) + 1
}
