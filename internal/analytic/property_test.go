package analytic

import (
	"math"
	"testing"
)

// choose returns the binomial coefficient C(n,k) as a float64 — exact
// for the small arguments these tests use.
func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r *= float64(n-k+i) / float64(i)
	}
	return r
}

// exactExpectedAffected is the exact expectation Theorem 2
// approximates: with k distinct faults placed uniformly in an n x n
// mesh, a given row is clean with hypergeometric probability
// C(n^2-n, k)/C(n^2, k), so by linearity of expectation
//
//	E[affected rows] = n * (1 - C(n^2-n, k)/C(n^2, k)).
func exactExpectedAffected(n, k int) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	if k > n*n-n {
		return float64(n) // too few cells remain to keep any row clean
	}
	return float64(n) * (1 - choose(n*n-n, k)/choose(n*n, k))
}

// enumerateAffected computes E[affected rows] by brute force: it walks
// every one of the C(n^2, k) fault placements and averages the number
// of rows containing a fault.
func enumerateAffected(n, k int) float64 {
	size := n * n
	rowCount := make([]int, n)
	chosen := make([]int, 0, k)
	var total, placements float64
	var walk func(start int)
	walk = func(start int) {
		if len(chosen) == k {
			placements++
			affected := 0
			for _, c := range rowCount {
				if c > 0 {
					affected++
				}
			}
			total += float64(affected)
			return
		}
		// Not enough cells left to finish the subset: prune.
		for cell := start; size-cell >= k-len(chosen); cell++ {
			rowCount[cell/n]++
			chosen = append(chosen, cell)
			walk(cell + 1)
			chosen = chosen[:len(chosen)-1]
			rowCount[cell/n]--
		}
	}
	walk(0)
	return total / placements
}

// TestExactReferenceByEnumeration validates the closed-form exact
// expectation against full enumeration of every fault placement on
// meshes small enough to enumerate.
func TestExactReferenceByEnumeration(t *testing.T) {
	for _, tc := range []struct{ n, kMax int }{{2, 4}, {3, 9}, {4, 4}} {
		for k := 1; k <= tc.kMax; k++ {
			enum := enumerateAffected(tc.n, k)
			exact := exactExpectedAffected(tc.n, k)
			if math.Abs(enum-exact) > 1e-9 {
				t.Errorf("n=%d k=%d: enumeration %v vs closed form %v", tc.n, k, enum, exact)
			}
		}
	}
}

// TestTheorem2AgainstBruteForce pins the theorem's coupon-collector
// approximation against the exact expectation for every (n, k) with
// n <= 6 and k up to the full mesh. The probe that set these bounds
// found the worst case at n=6, k=15: absolute error 0.168, relative
// error 2.9%; small meshes are worst in relative terms (10% at n=2).
func TestTheorem2AgainstBruteForce(t *testing.T) {
	for n := 2; n <= 6; n++ {
		for k := 1; k <= n*n; k++ {
			approx := ExpectedAffected(n, k)
			exact := exactExpectedAffected(n, k)
			if diff := math.Abs(approx - exact); diff > 0.2 && diff > 0.11*exact {
				t.Errorf("n=%d k=%d: Theorem 2 gives %.4f, exact %.4f (diff %.4f)",
					n, k, approx, exact, diff)
			}
			// Shared anchors of the approximation and the exact model.
			if k == 1 && math.Abs(approx-1) > 1e-9 {
				t.Errorf("n=%d: one fault must affect exactly one row, got %v", n, approx)
			}
			if exact > float64(k)+1e-9 {
				t.Errorf("n=%d k=%d: exact expectation %v exceeds the fault count", n, k, exact)
			}
			if exact < 0 || exact > float64(n)+1e-9 {
				t.Errorf("n=%d k=%d: exact expectation %v out of range", n, k, exact)
			}
		}
		// Both models saturate once no clean row can remain.
		if got := exactExpectedAffected(n, n*n-n+1); got != float64(n) {
			t.Errorf("n=%d: exact expectation %v at saturation, want %d", n, got, n)
		}
	}
}

// TestExactMonotone checks the exact expectation is strictly monotone
// in k below saturation — each extra fault has positive probability of
// hitting a clean row.
func TestExactMonotone(t *testing.T) {
	for n := 2; n <= 6; n++ {
		prev := 0.0
		for k := 1; k <= n*n-n; k++ {
			v := exactExpectedAffected(n, k)
			if v <= prev {
				t.Fatalf("n=%d k=%d: exact expectation %v not strictly above %v", n, k, v, prev)
			}
			prev = v
		}
	}
}
