package extmesh

import (
	"math/rand"
	"testing"

	"extmesh/internal/analytic"
	"extmesh/internal/core"
	"extmesh/internal/dynamic"
	"extmesh/internal/fault"
	"extmesh/internal/hypercube"
	"extmesh/internal/infocost"
	"extmesh/internal/mesh"
	"extmesh/internal/mesh3"
	"extmesh/internal/route"
	"extmesh/internal/safety"
	"extmesh/internal/sim"
	"extmesh/internal/simnet"
	"extmesh/internal/traffic"
	"extmesh/internal/wang"
	"extmesh/internal/wormhole"
)

// The per-figure benchmarks regenerate each experiment of the paper at
// a reduced scale (a quarter of the 200x200 mesh with proportionally
// scaled fault counts) so `go test -bench=.` finishes quickly while
// exercising exactly the code paths of the full evaluation. Run
// cmd/meshsim for the paper-scale numbers.

// benchCfg returns the scaled-down evaluation configuration.
func benchCfg() sim.Config {
	cfg := sim.DefaultConfig().Scale(1, 4) // 50x50 mesh, counts 2..50
	cfg.FaultCounts = []int{10, 25, 50}
	cfg.Configurations = 3
	cfg.DestsPerConfig = 10
	return cfg
}

// benchScenario builds one mid-density fault pattern for the micro
// benchmarks.
func benchScenario(b *testing.B, n, k int) (*fault.Scenario, mesh.Mesh) {
	b.Helper()
	m := mesh.Mesh{Width: n, Height: n}
	rng := rand.New(rand.NewSource(42))
	faults, err := fault.RandomFaults(m, k, rng, nil)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		b.Fatal(err)
	}
	return sc, m
}

// BenchmarkFig7AffectedRows regenerates Figure 7: the analytical and
// simulated fractions of affected rows and columns per fault count.
func BenchmarkFig7AffectedRows(b *testing.B) {
	cfg := benchCfg()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := mesh.Mesh{Width: cfg.N, Height: cfg.N}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range cfg.FaultCounts {
			_ = analytic.ExpectedAffectedFraction(cfg.N, k)
			faults, err := fault.RandomFaults(m, k, rng, nil)
			if err != nil {
				b.Fatal(err)
			}
			sc, err := fault.NewScenario(m, faults)
			if err != nil {
				b.Fatal(err)
			}
			blocked := fault.BuildBlocks(sc).BlockedGrid()
			_ = safety.AffectedRows(m, blocked)
			_ = safety.AffectedCols(m, blocked)
		}
	}
}

// BenchmarkFig8DisabledNodes regenerates Figure 8: the average number
// of disabled nodes per fault region under both models.
func BenchmarkFig8DisabledNodes(b *testing.B) {
	cfg := benchCfg()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := mesh.Mesh{Width: cfg.N, Height: cfg.N}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range cfg.FaultCounts {
			faults, err := fault.RandomFaults(m, k, rng, nil)
			if err != nil {
				b.Fatal(err)
			}
			sc, err := fault.NewScenario(m, faults)
			if err != nil {
				b.Fatal(err)
			}
			bs := fault.BuildBlocks(sc)
			mcc := fault.BuildMCC(sc, fault.TypeOne)
			_ = bs.DisabledCount()
			_ = mcc.DisabledCount()
		}
	}
}

// benchFigure runs the full scaled evaluation and hands the metrics to
// a figure extractor; used by the per-figure benchmarks below.
func benchFigure(b *testing.B, extract func([]sim.Metrics) *sim.Table) {
	b.Helper()
	cfg := benchCfg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ms, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if tb := extract(ms); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig9Extension1 regenerates Figure 9: safe source, extension
// 1 (minimal and sub-minimal) and the existence baseline.
func BenchmarkFig9Extension1(b *testing.B) {
	benchFigure(b, func(ms []sim.Metrics) *sim.Table { return sim.Figure9(ms, 0) })
}

// BenchmarkFig10Extension2 regenerates Figure 10: extension 2 with
// segment sizes 1, 5, 10 and max.
func BenchmarkFig10Extension2(b *testing.B) {
	benchFigure(b, func(ms []sim.Metrics) *sim.Table { return sim.Figure10(ms, 0) })
}

// BenchmarkFig11Extension3 regenerates Figure 11: extension 3 with
// partition levels 1-3.
func BenchmarkFig11Extension3(b *testing.B) {
	benchFigure(b, func(ms []sim.Metrics) *sim.Table { return sim.Figure11(ms, 0) })
}

// BenchmarkFig12Strategies regenerates Figure 12: strategies 1-4 and
// their MCC counterparts.
func BenchmarkFig12Strategies(b *testing.B) {
	benchFigure(b, func(ms []sim.Metrics) *sim.Table { return sim.Figure12(ms, 1) })
}

// --- Component micro-benchmarks (ablation of the building blocks) ---

func BenchmarkBuildBlocks(b *testing.B) {
	sc, _ := benchScenario(b, 200, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fault.BuildBlocks(sc)
	}
}

func BenchmarkBuildMCC(b *testing.B) {
	sc, _ := benchScenario(b, 200, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fault.BuildMCC(sc, fault.TypeOne)
	}
}

func BenchmarkSafetyLevels(b *testing.B) {
	sc, m := benchScenario(b, 200, 200)
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = safety.Compute(m, blocked)
	}
}

func BenchmarkReachGrid(b *testing.B) {
	sc, m := benchScenario(b, 200, 200)
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	src := m.Center()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wang.ReachFrom(m, src, blocked)
	}
}

func BenchmarkCoverageCondition(b *testing.B) {
	sc, m := benchScenario(b, 200, 200)
	bs := fault.BuildBlocks(sc)
	src := m.Center()
	d := mesh.Coord{X: m.Width - 10, Y: m.Height - 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wang.HasMinimalPathBlocks(bs.Blocks, src, d)
	}
}

func BenchmarkWuProtocolRoute(b *testing.B) {
	sc, m := benchScenario(b, 200, 120)
	bs := fault.BuildBlocks(sc)
	blocked := bs.BlockedGrid()
	r := route.NewRouter(m, blocked)
	md, err := core.NewModel(m, blocked)
	if err != nil {
		b.Fatal(err)
	}
	src := m.Center()
	// Collect safe destinations once so the benchmark measures routing.
	var dests []mesh.Coord
	for y := src.Y + 1; y < m.Height; y += 7 {
		for x := src.X + 1; x < m.Width; x += 7 {
			d := mesh.Coord{X: x, Y: y}
			if md.Safe(src, d) {
				dests = append(dests, d)
			}
		}
	}
	if len(dests) == 0 {
		b.Fatal("no safe destinations")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dests[i%len(dests)]
		if _, err := r.Route(src, d); err != nil {
			b.Fatalf("route %v->%v: %v", src, d, err)
		}
	}
}

func BenchmarkOracleRoute(b *testing.B) {
	sc, m := benchScenario(b, 200, 120)
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	src := m.Center()
	d := mesh.Coord{X: m.Width - 5, Y: m.Height - 5}
	if blocked[m.Index(d)] {
		b.Skip("destination blocked in this pattern")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Oracle(m, blocked, src, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtension1(b *testing.B) {
	benchCondition(b, func(md *core.Model, s, d mesh.Coord) {
		_ = md.Extension1(s, d)
	})
}

func BenchmarkExtension2Seg1(b *testing.B) {
	benchCondition(b, func(md *core.Model, s, d mesh.Coord) {
		_ = md.Extension2(s, d, 1)
	})
}

func BenchmarkExtension2Seg5(b *testing.B) {
	benchCondition(b, func(md *core.Model, s, d mesh.Coord) {
		_ = md.Extension2(s, d, 5)
	})
}

func BenchmarkExtension3Level3(b *testing.B) {
	sc, m := benchScenario(b, 200, 150)
	md, err := core.NewModel(m, fault.BuildBlocks(sc).BlockedGrid())
	if err != nil {
		b.Fatal(err)
	}
	src := m.Center()
	quadrant := mesh.Rect{MinX: src.X, MinY: src.Y, MaxX: m.Width - 1, MaxY: m.Height - 1}
	pivots := safety.Pivots(quadrant, 3, safety.CenterPivots, nil)
	d := mesh.Coord{X: m.Width - 7, Y: m.Height - 13}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = md.Extension3(src, d, pivots)
	}
}

func benchCondition(b *testing.B, f func(md *core.Model, s, d mesh.Coord)) {
	b.Helper()
	sc, m := benchScenario(b, 200, 150)
	md, err := core.NewModel(m, fault.BuildBlocks(sc).BlockedGrid())
	if err != nil {
		b.Fatal(err)
	}
	src := m.Center()
	d := mesh.Coord{X: m.Width - 7, Y: m.Height - 13}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(md, src, d)
	}
}

func BenchmarkNetworkEnsure(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var faults []Coord
	seen := make(map[Coord]bool)
	for len(faults) < 120 {
		c := Coord{X: rng.Intn(200), Y: rng.Intn(200)}
		if !seen[c] {
			seen[c] = true
			faults = append(faults, c)
		}
	}
	n, err := New(200, 200, faults)
	if err != nil {
		b.Fatal(err)
	}
	st := DefaultStrategy()
	s := Coord{X: 100, Y: 100}
	d := Coord{X: 180, Y: 170}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Ensure(s, d, Blocks, st)
	}
}

func BenchmarkTrafficWu(b *testing.B) {
	m := mesh.Mesh{Width: 32, Height: 32}
	rng := rand.New(rand.NewSource(12))
	faults, err := fault.RandomFaults(m, 30, rng, nil)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		b.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	cfg := traffic.Config{
		M:              m,
		Blocked:        blocked,
		Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
		InjectionRate:  0.05,
		Cycles:         100,
		Warmup:         20,
		Seed:           1,
		GuaranteedOnly: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicAddFault(b *testing.B) {
	m := mesh.Mesh{Width: 200, Height: 200}
	rng := rand.New(rand.NewSource(21))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr, err := dynamic.New(m)
		if err != nil {
			b.Fatal(err)
		}
		coords := make([]mesh.Coord, 0, 100)
		seen := make(map[mesh.Coord]bool)
		for len(coords) < 100 {
			c := mesh.Coord{X: rng.Intn(200), Y: rng.Intn(200)}
			if !seen[c] {
				seen[c] = true
				coords = append(coords, c)
			}
		}
		b.StartTimer()
		for _, c := range coords {
			if err := tr.AddFault(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFormationProtocol(b *testing.B) {
	sc, m := benchScenario(b, 100, 60)
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = simnet.FormationLevels(m, blocked)
	}
}

func BenchmarkMesh3Existence(b *testing.B) {
	m := mesh3.Mesh{Width: 30, Height: 30, Depth: 30}
	rng := rand.New(rand.NewSource(9))
	faults, err := mesh3.RandomFaults(m, 200, rng, nil)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := mesh3.NewScenario(m, faults)
	if err != nil {
		b.Fatal(err)
	}
	blocked := mesh3.BuildBlocks(sc).BlockedGrid()
	s := mesh3.Coord{X: 0, Y: 0, Z: 0}
	d := mesh3.Coord{X: 29, Y: 29, Z: 29}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mesh3.MinimalPathExists(m, s, d, blocked)
	}
}

func BenchmarkInfoCostMeasure(b *testing.B) {
	sc, m := benchScenario(b, 200, 150)
	bs := fault.BuildBlocks(sc)
	blocked := bs.BlockedGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = infocost.Measure(m, blocked, bs.Blocks)
	}
}

func BenchmarkWormholeClassVCs(b *testing.B) {
	m := mesh.Mesh{Width: 24, Height: 24}
	rng := rand.New(rand.NewSource(14))
	faults, err := fault.RandomFaults(m, 18, rng, nil)
	if err != nil {
		b.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		b.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	cfg := wormhole.Config{
		M:              m,
		Blocked:        blocked,
		Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
		FlitsPerPacket: 8,
		BufferFlits:    2,
		ClassVCs:       true,
		InjectionRate:  0.02,
		Cycles:         100,
		Warmup:         20,
		Seed:           1,
		GuaranteedOnly: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wormhole.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHypercubeLevels(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	var faults []int
	seen := make(map[int]bool)
	for len(faults) < 60 {
		f := rng.Intn(1 << 10)
		if !seen[f] {
			seen[f] = true
			faults = append(faults, f)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hypercube.New(10, faults); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDFSRoute(b *testing.B) {
	sc, m := benchScenario(b, 200, 150)
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	s := m.Center()
	d := mesh.Coord{X: m.Width - 3, Y: m.Height - 7}
	if blocked[m.Index(d)] {
		b.Skip("destination blocked")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.DFSRoute(m, blocked, s, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicRemoveFault(b *testing.B) {
	m := mesh.Mesh{Width: 200, Height: 200}
	rng := rand.New(rand.NewSource(27))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr, err := dynamic.New(m)
		if err != nil {
			b.Fatal(err)
		}
		coords := make([]mesh.Coord, 0, 60)
		seen := make(map[mesh.Coord]bool)
		for len(coords) < 60 {
			c := mesh.Coord{X: rng.Intn(200), Y: rng.Intn(200)}
			if !seen[c] {
				seen[c] = true
				coords = append(coords, c)
				if err := tr.AddFault(c); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		for _, c := range coords {
			if err := tr.RemoveFault(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchQueryNet builds a paper-scale 200x200 network for the
// query-plane benchmarks (cache, batch, oracle).
func benchQueryNet(b *testing.B) (*Network, []Coord) {
	b.Helper()
	rng := rand.New(rand.NewSource(31))
	var faults []Coord
	seen := make(map[Coord]bool)
	for len(faults) < 150 {
		c := Coord{X: rng.Intn(200), Y: rng.Intn(200)}
		if !seen[c] {
			seen[c] = true
			faults = append(faults, c)
		}
	}
	n, err := New(200, 200, faults)
	if err != nil {
		b.Fatal(err)
	}
	dests := make([]Coord, 0, 256)
	for len(dests) < 256 {
		c := Coord{X: rng.Intn(200), Y: rng.Intn(200)}
		if !n.IsFaulty(c) {
			dests = append(dests, c)
		}
	}
	return n, dests
}

func BenchmarkHasMinimalPathUncached(b *testing.B) {
	n, dests := benchQueryNet(b)
	s := Coord{X: 100, Y: 100}
	grid := make([]bool, 200*200)
	for _, f := range n.Faults() {
		grid[f.Y*200+f.X] = true
	}
	m := mesh.Mesh{Width: 200, Height: 200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = wang.MinimalPathExists(m, s, dests[i%len(dests)], grid)
	}
}

func BenchmarkHasMinimalPathCached(b *testing.B) {
	n, dests := benchQueryNet(b)
	s := Coord{X: 100, Y: 100}
	n.HasMinimalPath(s, dests[0]) // pay the per-source sweep up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.HasMinimalPath(s, dests[i%len(dests)])
	}
}

func BenchmarkEnsureAllBatch(b *testing.B) {
	n, dests := benchQueryNet(b)
	s := Coord{X: 100, Y: 100}
	st := DefaultStrategy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.EnsureAll(s, dests, Blocks, st)
	}
}

func BenchmarkRouteMany(b *testing.B) {
	n, dests := benchQueryNet(b)
	pairs := make([]Pair, len(dests))
	for i, d := range dests {
		pairs[i] = Pair{Src: Coord{X: 100, Y: 100}, Dst: d}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.RouteMany(pairs, Blocks)
	}
}

func BenchmarkOracleRouteCached(b *testing.B) {
	n, dests := benchQueryNet(b)
	s := Coord{X: 100, Y: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = n.OracleRoute(s, dests[i%len(dests)])
	}
}
