package main

import (
	"strings"
	"testing"
)

func TestRunSummary(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-faults", "3,3;3,4;4,4;5,4;6,4;2,5;5,5;3,6"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"mesh 12x12 with 8 faults",
		"faulty blocks:        1 (deactivating 12 healthy nodes)",
		"type-one MCCs:        1 (deactivating 8)",
		"largest block area:   20 nodes",
		"affected rows:        4 / 12",
		"affected columns:     5 / 12",
		"scalar safety level histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRandom(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-w", "32", "-h", "32", "-k", "20"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "storage, limited:") {
		t.Error("storage summary missing")
	}
	for _, want := range []string{"Monte Carlo (200 trials):", "analytic delta:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Theorem 2 cross-check missing %q:\n%s", want, out)
		}
	}

	// The cross-check is skippable for scripted use.
	sb.Reset()
	if err := run([]string{"-w", "16", "-h", "16", "-k", "4", "-mc-trials", "0"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), "Monte Carlo") {
		t.Error("-mc-trials 0 should omit the cross-check")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-faults", "bad"}, &sb); err == nil {
		t.Error("bad fault list should fail")
	}
	if err := run([]string{"-w", "0"}, &sb); err == nil {
		t.Error("bad dims should fail")
	}
	if err := run([]string{"-zz"}, &sb); err == nil {
		t.Error("bad flag should fail")
	}
}
