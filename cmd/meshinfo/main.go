// Command meshinfo summarizes a faulty mesh's derived structures: the
// faulty blocks and MCCs, affected rows/columns (with the Theorem-2
// analytical expectation), the storage cost of the two information
// models, and a histogram of scalar safety levels.
//
// Usage:
//
//	meshinfo -w 64 -h 64 -k 40 [-seed 1]
//	meshinfo -w 12 -h 12 -faults "3,3;3,4;4,4;5,4;6,4;2,5;5,5;3,6"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"extmesh/internal/analytic"
	"extmesh/internal/cli"
	"extmesh/internal/fault"
	"extmesh/internal/infocost"
	"extmesh/internal/mesh"
	"extmesh/internal/reliability"
	"extmesh/internal/safety"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshinfo", flag.ContinueOnError)
	var (
		width    = fs.Int("w", 64, "mesh width")
		height   = fs.Int("h", 64, "mesh height")
		faults   = fs.String("faults", "", "explicit fault list x1,y1;x2,y2;...")
		k        = fs.Int("k", 0, "number of random faults (when -faults is empty)")
		seed     = fs.Int64("seed", 1, "PRNG seed for random faults")
		mcTrials = fs.Int("mc-trials", 200, "Monte Carlo trials for the Theorem 2 cross-check (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m := mesh.Mesh{Width: *width, Height: *height}
	flist, err := cli.Faults(m, *faults, *k, *seed)
	if err != nil {
		return err
	}
	sc, err := fault.NewScenario(m, flist)
	if err != nil {
		return err
	}
	bs := fault.BuildBlocks(sc)
	mcc1 := fault.BuildMCC(sc, fault.TypeOne)
	mcc2 := fault.BuildMCC(sc, fault.TypeTwo)
	blocked := bs.BlockedGrid()

	fmt.Fprintf(out, "mesh %v with %d faults\n\n", m, len(flist))
	fmt.Fprintf(out, "fault regions:\n")
	fmt.Fprintf(out, "  faulty blocks:        %d (deactivating %d healthy nodes)\n",
		len(bs.Blocks), bs.DisabledCount())
	fmt.Fprintf(out, "  type-one MCCs:        %d (deactivating %d)\n",
		len(mcc1.Comps), mcc1.DisabledCount())
	fmt.Fprintf(out, "  type-two MCCs:        %d (deactivating %d)\n",
		len(mcc2.Comps), mcc2.DisabledCount())
	largest := 0
	for _, b := range bs.Blocks {
		if a := b.Area(); a > largest {
			largest = a
		}
	}
	fmt.Fprintf(out, "  largest block area:   %d nodes\n\n", largest)

	rows := safety.AffectedRows(m, blocked)
	cols := safety.AffectedCols(m, blocked)
	fmt.Fprintf(out, "information dissemination:\n")
	fmt.Fprintf(out, "  affected rows:        %d / %d (Theorem 2 expects %.1f)\n",
		rows, m.Height, analytic.ExpectedAffected(m.Height, len(flist)))
	fmt.Fprintf(out, "  affected columns:     %d / %d (Theorem 2 expects %.1f)\n",
		cols, m.Width, analytic.ExpectedAffected(m.Width, len(flist)))

	// Monte Carlo cross-check of the analytic model: resample this
	// fault count many times and compare the estimated expectation
	// against Theorem 2. (The single pattern above is one draw; the
	// sweep says how typical it is.)
	if *mcTrials > 0 && len(flist) > 0 && len(flist) <= m.Size()-2 {
		res, err := reliability.EstimatePoint(reliability.Config{
			Width:         m.Width,
			Height:        m.Height,
			Trials:        *mcTrials,
			PairsPerTrial: 1,
			Seed:          *seed,
		}, reliability.Point{K: len(flist)})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  Monte Carlo (%d trials): rows %.2f ±%.2f, cols %.2f ±%.2f\n",
			res.Trials,
			res.AffectedRows.Mean, res.AffectedRows.HalfWidth(),
			res.AffectedCols.Mean, res.AffectedCols.HalfWidth())
		fmt.Fprintf(out, "  analytic delta:       rows %+.2f, cols %+.2f\n",
			res.AnalyticRows-res.AffectedRows.Mean, res.AnalyticCols-res.AffectedCols.Mean)
	}

	rep := infocost.Measure(m, blocked, bs.Blocks)
	fmt.Fprintf(out, "  storage, global map:  %.1f ints/node\n", rep.PerNodeGlobal())
	fmt.Fprintf(out, "  storage, limited:     %.1f ints/node (%.0fx smaller)\n\n",
		rep.PerNodeLimited(), rep.Ratio())

	// Scalar safety-level histogram over free nodes.
	levels := safety.Compute(m, blocked)
	const buckets = 8
	hist := make([]int, buckets+1)
	free := 0
	for i := 0; i < m.Size(); i++ {
		if blocked[i] {
			continue
		}
		free++
		lvl := levels.At(m.CoordOf(i)).Min()
		if lvl >= buckets {
			hist[buckets]++
		} else {
			hist[lvl]++
		}
	}
	fmt.Fprintf(out, "scalar safety level histogram (%d free nodes):\n", free)
	for i := 0; i <= buckets; i++ {
		label := fmt.Sprintf("%d", i)
		if i == buckets {
			label = fmt.Sprintf("%d+", buckets)
		}
		bar := ""
		if free > 0 {
			for j := 0; j < 50*hist[i]/free; j++ {
				bar += "#"
			}
		}
		fmt.Fprintf(out, "  %3s  %6d  %s\n", label, hist[i], bar)
	}
	return nil
}
