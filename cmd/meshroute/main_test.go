package main

import (
	"strings"
	"testing"
)

const paperFaults = "3,3;3,4;4,4;5,4;6,4;2,5;5,5;3,6"

func TestRunSafeSource(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-src", "0,0", "-dst", "9,5", "-faults", paperFaults}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"base safe condition:        true",
		"exact existence of a minimal path: true",
		"Wu protocol (minimal assurance): 14 hops",
		"oracle (global information): 14 hops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMCCModel(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-src", "0,6", "-dst", "2,10", "-faults", paperFaults, "-model", "mcc"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "base safe condition:        true") {
		t.Errorf("MCC model should make this source safe:\n%s", sb.String())
	}
}

func TestRunRandomFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "24", "-h", "24", "-src", "0,0", "-dst", "20,20", "-k", "12", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "12 faults") {
		t.Errorf("expected 12 faults in output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-w", "8", "-h", "8"}, &sb); err == nil {
		t.Error("missing -dst should fail")
	}
	if err := run([]string{"-dst", "bad"}, &sb); err == nil {
		t.Error("bad destination should fail")
	}
	if err := run([]string{"-src", "bad", "-dst", "1,1"}, &sb); err == nil {
		t.Error("bad source should fail")
	}
	if err := run([]string{"-dst", "1,1", "-model", "nope"}, &sb); err == nil {
		t.Error("bad model should fail")
	}
	if err := run([]string{"-dst", "1,1", "-faults", "99,99"}, &sb); err == nil {
		t.Error("fault outside mesh should fail")
	}
}
