// Command meshroute routes a packet through a faulty 2-D mesh and
// reports which sufficient conditions hold at the source, the path
// found by Wu's limited-information protocol, and the full-information
// oracle baseline.
//
// Usage:
//
//	meshroute -w 20 -h 20 -src 0,0 -dst 17,15 -k 12 [-seed 3]
//	meshroute -w 12 -h 12 -src 0,0 -dst 11,11 \
//	          -faults "3,3;3,4;4,4;5,4;6,4;2,5;5,5;3,6" -model mcc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"extmesh"
	"extmesh/internal/cli"
	"extmesh/internal/mesh"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshroute:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshroute", flag.ContinueOnError)
	var (
		width   = fs.Int("w", 20, "mesh width")
		height  = fs.Int("h", 20, "mesh height")
		srcFlag = fs.String("src", "0,0", "source node x,y")
		dstFlag = fs.String("dst", "", "destination node x,y (required)")
		faults  = fs.String("faults", "", "explicit fault list x1,y1;x2,y2;...")
		k       = fs.Int("k", 0, "number of random faults (when -faults is empty)")
		seed    = fs.Int64("seed", 1, "PRNG seed for random faults")
		model   = fs.String("model", "blocks", "fault model: blocks or mcc")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dstFlag == "" {
		return fmt.Errorf("-dst is required")
	}
	src, err := cli.ParseCoord(*srcFlag)
	if err != nil {
		return err
	}
	dst, err := cli.ParseCoord(*dstFlag)
	if err != nil {
		return err
	}
	var fm extmesh.FaultModel
	switch *model {
	case "blocks":
		fm = extmesh.Blocks
	case "mcc":
		fm = extmesh.MCC
	default:
		return fmt.Errorf("unknown model %q", *model)
	}

	m := mesh.Mesh{Width: *width, Height: *height}
	flist, err := cli.Faults(m, *faults, *k, *seed, src, dst)
	if err != nil {
		return err
	}
	net, err := extmesh.New(*width, *height, flist)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "mesh %dx%d, %d faults, %d faulty blocks, model %v\n",
		*width, *height, len(flist), len(net.Blocks()), fm)
	lvl, err := net.SafetyLevel(src, fm)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "source %v extended safety level: %v\n", src, lvl)
	fmt.Fprintf(out, "destination %v, distance %d\n", dst, distance(src, dst))

	fmt.Fprintf(out, "\nconditions at the source:\n")
	fmt.Fprintf(out, "  base safe condition:        %v\n", net.Safe(src, dst, fm))
	report := func(name string, st extmesh.Strategy) {
		a := net.Ensure(src, dst, fm, st)
		fmt.Fprintf(out, "  %-27s %v", name+":", a.Verdict)
		if len(a.Via()) > 0 {
			fmt.Fprintf(out, " (via %v)", a.Via())
		}
		fmt.Fprintln(out)
	}
	report("extension 1", extmesh.Strategy{UseExtension1: true, AllowDetour: true})
	report("extension 2 (seg 5)", extmesh.Strategy{UseExtension2: true, SegmentSize: 5})
	report("extension 3 (level 3)", extmesh.Strategy{UseExtension3: true, PivotLevels: 3})
	report("strategy 4 (all)", extmesh.DefaultStrategy())

	fmt.Fprintf(out, "\nexact existence of a minimal path: %v\n", net.HasMinimalPath(src, dst))

	path, a, err := net.RouteAssured(src, dst, fm, extmesh.DefaultStrategy())
	switch {
	case err == nil:
		fmt.Fprintf(out, "Wu protocol (%v assurance): %d hops\n  %v\n", a.Verdict, path.Hops(), path)
	default:
		fmt.Fprintf(out, "Wu protocol: %v\n", err)
		if p, perr := net.Route(src, dst, fm); perr == nil {
			fmt.Fprintf(out, "unassured adaptive attempt succeeded anyway: %d hops\n", p.Hops())
		}
	}
	if p, err := net.OracleRoute(src, dst); err == nil {
		fmt.Fprintf(out, "oracle (global information): %d hops\n", p.Hops())
	} else {
		fmt.Fprintf(out, "oracle (global information): no minimal path\n")
	}
	return nil
}

func distance(a, b extmesh.Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
