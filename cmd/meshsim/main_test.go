package main

import (
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "40", "-configs", "2", "-dests", "5", "-maxfaults", "20", "-step", "10"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, id := range []string{"fig7", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12a", "fig12b"} {
		if !strings.Contains(out, id+" —") {
			t.Errorf("output missing table %s", id)
		}
	}
	if !strings.Contains(out, "40x40 mesh") {
		t.Error("output missing header")
	}
}

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "40", "-configs", "2", "-dests", "5", "-maxfaults", "10", "-step", "10", "-exp", "fig9"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig9a —") || !strings.Contains(out, "fig9b —") {
		t.Error("fig9 panels missing")
	}
	if strings.Contains(out, "fig10a —") {
		t.Error("unexpected figure in filtered output")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	// An unknown experiment must fail fast — before the simulation runs
	// — and name the known ids.
	err := run([]string{"-exp", "nope", "-n", "200", "-configs", "20", "-dests", "50", "-maxfaults", "200", "-step", "10"}, &sb)
	if err == nil {
		t.Error("unknown experiment should fail")
	} else if !strings.Contains(err.Error(), "fig12b") || !strings.Contains(err.Error(), "lineagea") {
		t.Errorf("unknown-experiment error should list known ids, got: %v", err)
	}
	if sb.Len() != 0 {
		t.Error("unknown experiment must be rejected before any output")
	}
	if err := run([]string{"-n", "2"}, &sb); err == nil {
		t.Error("invalid config should fail")
	}
	if err := run([]string{"-bogusflag"}, &sb); err == nil {
		t.Error("bad flag should fail")
	}
}

// TestRunTimingFlag checks the -timing stage breakdown line.
func TestRunTimingFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "40", "-configs", "2", "-dests", "5", "-maxfaults", "10", "-step", "10", "-exp", "fig7", "-timing"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "# stage breakdown (worker time): setup ") {
		t.Errorf("timing breakdown missing:\n%s", sb.String())
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "40", "-configs", "1", "-dests", "3", "-maxfaults", "10", "-step", "10", "-json", "-exp", "fig7"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, `"id": "fig7"`) {
		t.Errorf("JSON output missing table id:\n%s", out)
	}
	if strings.Contains(out, "—") {
		t.Error("JSON output contains table formatting")
	}
}

func TestRunScalingSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scaling", "-configs", "2", "-dests", "5"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "scaling — scalability at 0.50% fault density") {
		t.Errorf("scaling table missing:\n%s", out)
	}
	if !strings.Contains(out, "     300") {
		t.Errorf("largest mesh row missing:\n%s", out)
	}
}

func TestRunOnlineSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "16", "-fault-schedule", "bursts:count=2,size=4,spread=1",
		"-cycles", "120", "-warmup", "30", "-inj", "0.05"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"online fault-arrival sweep", "reroute", "degrade", "drop", "stretch"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Header comments + column header + one row per policy.
	if lines := strings.Count(strings.TrimSpace(out), "\n"); lines != 5 {
		t.Errorf("expected 6 lines, got %d:\n%s", lines+1, out)
	}
}

func TestRunOnlineSweepSinglePolicy(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "16", "-fault-rate", "0.01", "-policy", "degrade",
		"-cycles", "120", "-warmup", "30"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	// "reroute " with a trailing space matches the policy column, not
	// the "rerouted" counter header.
	if !strings.Contains(out, "degrade ") || strings.Contains(out, "reroute ") || strings.Contains(out, "drop ") {
		t.Errorf("single-policy sweep should print only the degrade row:\n%s", out)
	}
}

func TestRunOnlineSweepErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fault-rate", "0.1", "-fault-schedule", "none"}, &sb); err == nil {
		t.Error("fault-rate plus fault-schedule should fail")
	}
	if err := run([]string{"-fault-rate", "0.1", "-policy", "yolo"}, &sb); err == nil {
		t.Error("unknown policy should fail")
	}
}
