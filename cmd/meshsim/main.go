// Command meshsim regenerates the paper's evaluation figures plus the
// extra experiments (storage cost, end-to-end router delivery, paper
// variations, hypercube lineage, clustered workloads and the
// scalability sweep). Each experiment is printed as a fixed-width
// table — or JSON with -json — with one row per fault count and one
// column per curve.
//
// Usage:
//
//	meshsim [-exp all|fig7|fig8|fig9|fig10|fig11|fig12|info|router|var|lineage]
//	        [-n 200] [-configs 20] [-dests 50] [-seed 1] [-maxfaults 200]
//	        [-step 10] [-timing] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// The defaults reproduce the paper's setup: a 200x200 mesh, the source
// at the center, destinations in the first-quadrant 100x100 submesh,
// and fault counts 10..200.
//
// With -fault-rate or -fault-schedule, meshsim instead runs the online
// fault-arrival sweep: a traffic simulation starts on a fault-free
// mesh, faults arrive mid-run per the schedule, and one row per packet
// policy (reroute, degrade, drop) reports how delivery degrades. Use
// -policy to restrict the sweep to a single policy, and a modest -n
// (for example 32): this mode simulates every cycle.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"extmesh/internal/cli"
	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/sim"
	"extmesh/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshsim", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment to run: all, fig7, fig8, fig9, fig10, fig11, fig12")
		n          = fs.Int("n", 200, "mesh side length")
		configs    = fs.Int("configs", 20, "fault configurations per fault count")
		dests      = fs.Int("dests", 50, "destinations per configuration")
		seed       = fs.Int64("seed", 1, "PRNG seed")
		maxFaults  = fs.Int("maxfaults", 200, "largest fault count")
		step       = fs.Int("step", 10, "fault count step")
		asJSON     = fs.Bool("json", false, "emit JSON instead of tables")
		clusters   = fs.Int("clusters", 0, "cluster the faults around this many centers (0 = uniform, the paper's workload)")
		spread     = fs.Int("spread", 4, "cluster spread (with -clusters)")
		scaling    = fs.Bool("scaling", false, "run the mesh-size scalability sweep instead of the figures")
		density    = fs.Float64("density", 0.005, "fault density for -scaling")
		faultSched = fs.String("fault-schedule", "", "run the online fault-arrival sweep with this schedule (inject.Parse syntax)")
		faultRate  = fs.Float64("fault-rate", 0, "shorthand for -fault-schedule random:rate=R")
		policyName = fs.String("policy", "", "restrict the online sweep to one policy: reroute, degrade or drop (default all three)")
		cycles     = fs.Int("cycles", 400, "measured cycles (online sweep)")
		warmup     = fs.Int("warmup", 100, "warmup cycles (online sweep)")
		injRate    = fs.Float64("inj", 0.05, "packet injection rate (online sweep)")
		prof       = cli.ProfileFlags(fs)
		timing     = fs.Bool("timing", false, "print the per-stage timing breakdown (setup/evaluation/aggregation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := *faultSched
	if *faultRate > 0 {
		if spec != "" {
			return fmt.Errorf("-fault-rate and -fault-schedule are mutually exclusive")
		}
		spec = fmt.Sprintf("random:rate=%g", *faultRate)
	}
	if spec != "" {
		return onlineSweep(out, *n, *seed, spec, *policyName, *cycles, *warmup, *injRate)
	}

	// Reject an unknown experiment before paying for the simulation.
	want := strings.ToLower(*exp)
	if !*scaling && want != "all" {
		known := false
		for _, id := range sim.ExperimentIDs() {
			if strings.HasPrefix(id, want) {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment %q; known ids: all %s", *exp, strings.Join(sim.ExperimentIDs(), " "))
		}
	}

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *scaling {
		sides := []int{50, 100, 150, 200, 300}
		points, err := sim.RunScaling(sides, *density, *configs, *dests, *seed)
		if err != nil {
			return err
		}
		tb := sim.ScalingTable(points, *density)
		fmt.Fprintf(out, "# extmesh scalability sweep, %d configs x %d dests per point, seed %d\n\n", *configs, *dests, *seed)
		if *asJSON {
			return sim.WriteJSON(out, []*sim.Table{tb})
		}
		return tb.Format(out)
	}

	cfg := sim.Config{
		N:              *n,
		Configurations: *configs,
		DestsPerConfig: *dests,
		Seed:           *seed,
		Clusters:       *clusters,
		ClusterSpread:  *spread,
	}
	for k := *step; k <= *maxFaults; k += *step {
		cfg.FaultCounts = append(cfg.FaultCounts, k)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	start := time.Now()
	ms, tm, err := sim.RunTimed(cfg)
	if err != nil {
		return err
	}
	workload := "uniform faults"
	if cfg.Clusters > 0 {
		workload = fmt.Sprintf("faults clustered around %d centers (spread %d)", cfg.Clusters, cfg.ClusterSpread)
	}
	fmt.Fprintf(out, "# extmesh evaluation: %dx%d mesh, %s, %d configs x %d dests per point, seed %d (%.1fs)\n",
		cfg.N, cfg.N, workload, cfg.Configurations, cfg.DestsPerConfig, cfg.Seed, time.Since(start).Seconds())
	if *timing {
		worked := tm.Setup + tm.Evaluation + tm.Aggregation
		fmt.Fprintf(out, "# stage breakdown (worker time): setup %.1fs (%.0f%%), evaluation %.1fs (%.0f%%), aggregation %.2fs\n",
			tm.Setup.Seconds(), 100*float64(tm.Setup)/float64(max(1, int64(worked))),
			tm.Evaluation.Seconds(), 100*float64(tm.Evaluation)/float64(max(1, int64(worked))),
			tm.Aggregation.Seconds())
	}
	fmt.Fprintln(out)

	var selected []*sim.Table
	for _, tb := range sim.AllTables(ms) {
		if want != "all" && !strings.HasPrefix(tb.ID, want) {
			continue
		}
		selected = append(selected, tb)
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if *asJSON {
		return sim.WriteJSON(out, selected)
	}
	for _, tb := range selected {
		if err := tb.Format(out); err != nil {
			return err
		}
	}
	return nil
}

// onlineSweep runs the online fault-arrival experiment: traffic starts
// on a fault-free n x n mesh routed by Wu's protocol, faults arrive
// mid-run per the schedule, and each packet policy gets one row
// showing how delivery degrades. Packet conservation is checked by the
// simulator itself; the run fails loudly if it does not hold.
func onlineSweep(out io.Writer, n int, seed int64, spec, policyName string, cycles, warmup int, injRate float64) error {
	m := mesh.Mesh{Width: n, Height: n}
	sched, err := inject.Parse(m, warmup+cycles, seed+1, spec)
	if err != nil {
		return err
	}
	policies := []traffic.Policy{traffic.PolicyReroute, traffic.PolicyDegrade, traffic.PolicyDrop}
	if policyName != "" {
		p, err := traffic.ParsePolicy(policyName)
		if err != nil {
			return err
		}
		policies = []traffic.Policy{p}
	}

	fmt.Fprintf(out, "# online fault-arrival sweep: %dx%d mesh, Wu routing, injection %.3f, %d+%d cycles, seed %d\n",
		n, n, injRate, warmup, cycles, seed)
	fmt.Fprintf(out, "# schedule %s: %d events (fault seed %d)\n", spec, len(sched), seed+1)
	fmt.Fprintf(out, "%8s  %8s  %10s  %10s  %8s  %8s  %8s  %8s  %10s  %10s\n",
		"policy", "events", "delivered", "stranded", "rerouted", "degraded", "dropped", "detours", "latency", "stretch")
	for _, p := range policies {
		blocked := make([]bool, m.Size())
		cfg := traffic.Config{
			M:              m,
			Blocked:        blocked,
			Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
			InjectionRate:  injRate,
			Cycles:         cycles,
			Warmup:         warmup,
			Seed:           seed,
			GuaranteedOnly: true,
		}
		on := &traffic.Online{
			Schedule: sched,
			Policy:   p,
			Rebuild: func(b []bool) traffic.RoutingFunc {
				return traffic.WuRouting(route.NewRouter(m, b))
			},
		}
		st, ost, err := traffic.RunOnline(cfg, on)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%8v  %8d  %10d  %10d  %8d  %8d  %8d  %8d  %10.2f  %10.3f\n",
			p, ost.Events, st.Delivered, st.Undeliverable,
			ost.Rerouted, ost.Degraded, ost.Dropped(), ost.DetourHops, st.AvgLatency, st.AvgStretch)
	}
	return nil
}
