// Command meshsim regenerates the paper's evaluation figures plus the
// extra experiments (storage cost, end-to-end router delivery, paper
// variations, hypercube lineage, clustered workloads and the
// scalability sweep). Each experiment is printed as a fixed-width
// table — or JSON with -json — with one row per fault count and one
// column per curve.
//
// Usage:
//
//	meshsim [-exp all|fig7|fig8|fig9|fig10|fig11|fig12|info|router|var|lineage]
//	        [-n 200] [-configs 20] [-dests 50] [-seed 1] [-maxfaults 200]
//	        [-step 10] [-timing] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// The defaults reproduce the paper's setup: a 200x200 mesh, the source
// at the center, destinations in the first-quadrant 100x100 submesh,
// and fault counts 10..200.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"extmesh/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshsim", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment to run: all, fig7, fig8, fig9, fig10, fig11, fig12")
		n          = fs.Int("n", 200, "mesh side length")
		configs    = fs.Int("configs", 20, "fault configurations per fault count")
		dests      = fs.Int("dests", 50, "destinations per configuration")
		seed       = fs.Int64("seed", 1, "PRNG seed")
		maxFaults  = fs.Int("maxfaults", 200, "largest fault count")
		step       = fs.Int("step", 10, "fault count step")
		asJSON     = fs.Bool("json", false, "emit JSON instead of tables")
		clusters   = fs.Int("clusters", 0, "cluster the faults around this many centers (0 = uniform, the paper's workload)")
		spread     = fs.Int("spread", 4, "cluster spread (with -clusters)")
		scaling    = fs.Bool("scaling", false, "run the mesh-size scalability sweep instead of the figures")
		density    = fs.Float64("density", 0.005, "fault density for -scaling")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		timing     = fs.Bool("timing", false, "print the per-stage timing breakdown (setup/evaluation/aggregation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Reject an unknown experiment before paying for the simulation.
	want := strings.ToLower(*exp)
	if !*scaling && want != "all" {
		known := false
		for _, id := range sim.ExperimentIDs() {
			if strings.HasPrefix(id, want) {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment %q; known ids: all %s", *exp, strings.Join(sim.ExperimentIDs(), " "))
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "meshsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "meshsim:", err)
			}
		}()
	}

	if *scaling {
		sides := []int{50, 100, 150, 200, 300}
		points, err := sim.RunScaling(sides, *density, *configs, *dests, *seed)
		if err != nil {
			return err
		}
		tb := sim.ScalingTable(points, *density)
		fmt.Fprintf(out, "# extmesh scalability sweep, %d configs x %d dests per point, seed %d\n\n", *configs, *dests, *seed)
		if *asJSON {
			return sim.WriteJSON(out, []*sim.Table{tb})
		}
		return tb.Format(out)
	}

	cfg := sim.Config{
		N:              *n,
		Configurations: *configs,
		DestsPerConfig: *dests,
		Seed:           *seed,
		Clusters:       *clusters,
		ClusterSpread:  *spread,
	}
	for k := *step; k <= *maxFaults; k += *step {
		cfg.FaultCounts = append(cfg.FaultCounts, k)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	start := time.Now()
	ms, tm, err := sim.RunTimed(cfg)
	if err != nil {
		return err
	}
	workload := "uniform faults"
	if cfg.Clusters > 0 {
		workload = fmt.Sprintf("faults clustered around %d centers (spread %d)", cfg.Clusters, cfg.ClusterSpread)
	}
	fmt.Fprintf(out, "# extmesh evaluation: %dx%d mesh, %s, %d configs x %d dests per point, seed %d (%.1fs)\n",
		cfg.N, cfg.N, workload, cfg.Configurations, cfg.DestsPerConfig, cfg.Seed, time.Since(start).Seconds())
	if *timing {
		worked := tm.Setup + tm.Evaluation + tm.Aggregation
		fmt.Fprintf(out, "# stage breakdown (worker time): setup %.1fs (%.0f%%), evaluation %.1fs (%.0f%%), aggregation %.2fs\n",
			tm.Setup.Seconds(), 100*float64(tm.Setup)/float64(max(1, int64(worked))),
			tm.Evaluation.Seconds(), 100*float64(tm.Evaluation)/float64(max(1, int64(worked))),
			tm.Aggregation.Seconds())
	}
	fmt.Fprintln(out)

	var selected []*sim.Table
	for _, tb := range sim.AllTables(ms) {
		if want != "all" && !strings.HasPrefix(tb.ID, want) {
			continue
		}
		selected = append(selected, tb)
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if *asJSON {
		return sim.WriteJSON(out, selected)
	}
	for _, tb := range selected {
		if err := tb.Format(out); err != nil {
			return err
		}
	}
	return nil
}
