// Command meshserved is the routing-as-a-service daemon: it serves
// extmesh query and fault-admin endpoints over HTTP for a set of named
// live meshes. Meshes can be preloaded from -mesh specs, created over
// the API, or uploaded as network blobs; /metrics and /debug/vars
// expose counters, gauges, and latency histograms; an admission gate
// sheds load with 429 once the configured concurrency and queue are
// exhausted; SIGINT/SIGTERM triggers a graceful drain. POST
// /v1/reliability runs Monte Carlo survivability sweeps behind a
// separate concurrency gate with a cost budget (413 beyond it, 429
// when every sweep slot is busy).
//
// With -data-dir the registry is durable: every mutation is appended
// to a CRC-framed journal before it is acknowledged, snapshots compact
// the journal periodically, and on boot the daemon replays
// snapshot+journal — answering /readyz with 503 until recovery
// completes — so a kill -9 mid-traffic loses nothing that was
// acknowledged. A graceful drain writes a final snapshot.
//
// With -binary-addr a second listener serves the query plane over the
// length-prefixed binary wire protocol (pipelined persistent
// connections, same answers as the JSON endpoints at a fraction of the
// per-query cost); see meshclient.BinaryClient and meshstress -proto
// binary.
//
// With -replication-addr a journaled daemon also serves its journal to
// read replicas over a CRC-framed TCP stream; a daemon started with
// -replicate-from follows a primary instead, applying the stream
// through the same deterministic journal replay as crash recovery and
// answering queries read-only (mutations get 403). GET /replication
// reports the node's role, sequence number and follower lag.
//
// With -peers (alongside -replication-addr and -data-dir) the node
// joins a failover cluster: followers that lose the primary past
// -failover-timeout promote themselves by durably bumping the cluster
// epoch, the epoch fences the old primary out of every write path, and
// a SIGTERM'd primary says goodbye so its followers fail over
// immediately. Exactly one fresh-cluster node omits -replicate-from
// and starts as the primary; the rest name it (or discover it) and
// start as followers. See DESIGN.md §17.
//
// Usage:
//
//	meshserved [-addr :8423] [-binary-addr :8424]
//	           [-mesh name:WxH[:faults[:seed]]]...
//	           [-replication-addr :8425 | -replicate-from host:8425]
//	           [-peers host2:8425,host3:8425] [-failover-timeout 2s]
//	           [-node-id n1] [-failover-rank 0] [-rep-heartbeat 500ms]
//	           [-data-dir DIR] [-fsync always|interval|never]
//	           [-fsync-interval 100ms] [-snapshot-every 4096]
//	           [-max-inflight 0] [-max-queue 0] [-queue-wait 100ms]
//	           [-read-timeout 10s] [-write-timeout 30s] [-idle-timeout 2m]
//	           [-drain-timeout 15s] [-quiet]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Example:
//
//	meshserved -addr :8423 -data-dir /var/lib/meshserved -mesh prod:200x200:40:1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"extmesh"
	"extmesh/internal/cli"
	"extmesh/internal/fault"
	"extmesh/internal/journal"
	"extmesh/internal/mesh"
	"extmesh/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshserved:", err)
		os.Exit(1)
	}
}

// meshSpecs collects repeatable -mesh flags.
type meshSpecs []string

func (m *meshSpecs) String() string     { return strings.Join(*m, ",") }
func (m *meshSpecs) Set(s string) error { *m = append(*m, s); return nil }

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshserved", flag.ContinueOnError)
	var specs meshSpecs
	var (
		addr         = fs.String("addr", ":8423", "listen address")
		binaryAddr   = fs.String("binary-addr", "", "binary query protocol listen address (empty = disabled)")
		maxInflight  = fs.Int("max-inflight", 0, "max concurrently executing requests (0 = 4*GOMAXPROCS)")
		maxQueue     = fs.Int("max-queue", 0, "max requests queued for a slot (0 = 4*max-inflight)")
		queueWait    = fs.Duration("queue-wait", 100*time.Millisecond, "max time a request waits in queue before a 429")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "HTTP idle connection timeout")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful shutdown deadline for in-flight requests")
		quiet        = fs.Bool("quiet", false, "disable per-request access logging")
		dataDir      = fs.String("data-dir", "", "durable state directory (empty = memory only)")
		repAddr      = fs.String("replication-addr", "", "journal replication listener for read replicas (requires -data-dir)")
		repFrom      = fs.String("replicate-from", "", "primary replication address to follow as a read-only replica (requires -data-dir)")
		peers        = fs.String("peers", "", "comma-separated peer replication addresses; enables automatic failover (requires -replication-addr and -data-dir)")
		failTimeout  = fs.Duration("failover-timeout", 2*time.Second, "failover deadline: followers promote after this much primary silence, a primary without acks fences itself")
		failRank     = fs.Int("failover-rank", 0, "candidacy stagger rank; give each cluster node a distinct small integer")
		repBeat      = fs.Duration("rep-heartbeat", 500*time.Millisecond, "primary-to-replica heartbeat interval; keep -failover-timeout at least 4x this")
		nodeID       = fs.String("node-id", "", "cluster node identity for status and failover tie-breaks (default: the replication address)")
		fsyncPolicy  = fs.String("fsync", "interval", "journal fsync policy: always, interval or never")
		fsyncEvery   = fs.Duration("fsync-interval", 100*time.Millisecond, "max unsynced window under -fsync interval")
		snapEvery    = fs.Int("snapshot-every", 4096, "journal records between snapshot compactions")
		prof         = cli.ProfileFlags(fs)
	)
	fs.Var(&specs, "mesh", "preload mesh, repeatable: name:WxH[:faults[:seed]] (e.g. prod:200x200:40:1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*repAddr != "" || *repFrom != "") && *dataDir == "" {
		return fmt.Errorf("-replication-addr and -replicate-from require -data-dir")
	}
	if *repAddr != "" && *repFrom != "" && *peers == "" {
		// In a failover cluster every node both serves its journal and
		// may follow; standalone replication keeps the one-hop shape.
		return fmt.Errorf("-replication-addr and -replicate-from are mutually exclusive without -peers (chained replication is not supported)")
	}
	if *peers != "" && (*repAddr == "" || *dataDir == "") {
		return fmt.Errorf("-peers requires -replication-addr and -data-dir")
	}
	if *repFrom != "" && len(specs) > 0 {
		// A replica's state comes from the primary's journal; a local
		// preload would assign sequence numbers that collide with the
		// replicated stream.
		return fmt.Errorf("-mesh preload specs cannot be combined with -replicate-from")
	}

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	logger := log.New(out, "", log.LstdFlags|log.Lmicroseconds)
	var accessLog *log.Logger
	if !*quiet {
		accessLog = logger
	}
	var store *journal.Store
	if *dataDir != "" {
		policy, err := journal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		store, err = journal.Open(*dataDir, journal.Options{
			Policy:       policy,
			Interval:     *fsyncEvery,
			CompactEvery: *snapEvery,
		})
		if err != nil {
			return err
		}
		defer store.Close()
	}

	id := *nodeID
	if id == "" {
		id = *repAddr
	}
	srv := serve.New(serve.Options{
		MaxInFlight:  *maxInflight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		Log:          accessLog,
		Journal:      store,
		NodeID:       id,
		RepHeartbeat: *repBeat,
	})
	if store != nil {
		start := time.Now()
		if err := srv.Recover(); err != nil {
			return fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		logger.Printf("recovered %d meshes from %s in %s (journal seq %d)",
			len(srv.Meshes().Names()), *dataDir, time.Since(start).Round(time.Millisecond), store.Seq())
	}

	for _, spec := range specs {
		name, d, err := buildMesh(spec)
		if err != nil {
			return fmt.Errorf("-mesh %q: %w", spec, err)
		}
		// A recovered mesh outranks its preload spec: the journal holds
		// the acknowledged history, the spec only the original seed.
		if srv.Meshes().Get(name) != nil {
			logger.Printf("mesh %q already recovered from journal, ignoring -mesh spec", name)
			continue
		}
		if err := srv.RegisterMesh(name, d); err != nil {
			return err
		}
		logger.Printf("preloaded mesh %q: %dx%d, %d faults", name, d.Width(), d.Height(), d.FaultCount())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		ErrorLog:     logger,
	}
	// All serving planes — HTTP, binary, replication — share one derived
	// context: when any of them exits (signal, listener failure), the
	// others drain too. Without this, a SIGTERM that stopped the HTTP
	// plane could leave the binary listener's persistent connections (or
	// a replication stream) alive past the graceful drain.
	srvCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	// The binary query listener shares the registry, snapshots and
	// admission gate with the HTTP surface; mutations stay HTTP-only.
	binErrc := make(chan error, 1)
	if *binaryAddr != "" {
		bl, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			return fmt.Errorf("binary listener: %w", err)
		}
		logger.Printf("binary protocol on %s", bl.Addr())
		go func() {
			binErrc <- srv.ServeBinary(srvCtx, bl, *drainTimeout)
			cancelAll()
		}()
	} else {
		binErrc <- nil
	}
	// Replication: either serve followers (primary) or follow a primary
	// (read-only replica).
	repErrc := make(chan error, 1)
	switch {
	case *peers != "":
		rl, err := net.Listen("tcp", *repAddr)
		if err != nil {
			return fmt.Errorf("replication listener: %w", err)
		}
		fo, err := serve.NewFailover(srv, serve.FailoverOptions{
			Listener:     rl,
			Peers:        strings.Split(*peers, ","),
			StartPrimary: *repFrom == "",
			Source:       *repFrom,
			Timeout:      *failTimeout,
			Rank:         *failRank,
			Log:          logger,
		})
		if err != nil {
			return err
		}
		role := "follower"
		if *repFrom == "" {
			role = "primary"
		}
		logger.Printf("failover cluster: node %q on %s as %s, peers %s, timeout %s",
			id, rl.Addr(), role, *peers, *failTimeout)
		go func() {
			repErrc <- fo.Run(srvCtx)
			cancelAll()
		}()
	case *repAddr != "":
		rl, err := net.Listen("tcp", *repAddr)
		if err != nil {
			return fmt.Errorf("replication listener: %w", err)
		}
		logger.Printf("replication on %s", rl.Addr())
		go func() {
			repErrc <- srv.ServeReplication(srvCtx, rl)
			cancelAll()
		}()
	case *repFrom != "":
		rep := serve.NewReplica(srv, serve.ReplicaOptions{Source: *repFrom})
		logger.Printf("following primary at %s (read-only replica)", *repFrom)
		go func() {
			repErrc <- rep.Run(srvCtx)
			cancelAll()
		}()
	default:
		repErrc <- nil
	}
	logger.Printf("serving on %s (%d meshes)", l.Addr(), len(srv.Meshes().Names()))
	err = serve.Serve(srvCtx, httpSrv, l, *drainTimeout)
	cancelAll() // HTTP exit drains the binary and replication planes too
	binErr := <-binErrc
	repErr := <-repErrc
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if binErr != nil {
		return fmt.Errorf("binary listener: %w", binErr)
	}
	if repErr != nil && !errors.Is(repErr, context.Canceled) {
		return fmt.Errorf("replication: %w", repErr)
	}
	if store != nil {
		// A final snapshot makes the next boot replay-free.
		if err := srv.Checkpoint(); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		logger.Printf("final snapshot written to %s", *dataDir)
	}
	logger.Printf("drained, exiting")
	return nil
}

// buildMesh parses a preload spec "name:WxH[:faults[:seed]]" and
// constructs the mesh with that many uniformly random faults.
func buildMesh(spec string) (string, *extmesh.DynamicNetwork, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return "", nil, fmt.Errorf("want name:WxH[:faults[:seed]]")
	}
	name := parts[0]
	dims := strings.SplitN(parts[1], "x", 2)
	if len(dims) != 2 {
		return "", nil, fmt.Errorf("dimensions %q: want WxH", parts[1])
	}
	w, err := strconv.Atoi(dims[0])
	if err != nil {
		return "", nil, fmt.Errorf("width %q: %w", dims[0], err)
	}
	h, err := strconv.Atoi(dims[1])
	if err != nil {
		return "", nil, fmt.Errorf("height %q: %w", dims[1], err)
	}
	k := 0
	if len(parts) >= 3 {
		if k, err = strconv.Atoi(parts[2]); err != nil {
			return "", nil, fmt.Errorf("fault count %q: %w", parts[2], err)
		}
	}
	var seed int64 = 1
	if len(parts) == 4 {
		if seed, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
			return "", nil, fmt.Errorf("seed %q: %w", parts[3], err)
		}
	}

	d, err := extmesh.NewDynamic(w, h)
	if err != nil {
		return "", nil, err
	}
	if k > 0 {
		faults, err := fault.RandomFaults(mesh.Mesh{Width: w, Height: h}, k, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			return "", nil, err
		}
		for _, c := range faults {
			if err := d.AddFault(c); err != nil {
				return "", nil, err
			}
		}
	}
	return name, d, nil
}
