package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestBuildMeshSpecs(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		name    string
		w, h, k int
		ok      bool
	}{
		{"m:16x16", "m", 16, 16, 0, true},
		{"prod:200x200:40:1", "prod", 200, 200, 40, true},
		{"a:8x4:3", "a", 8, 4, 3, true},
		{"noseparator", "", 0, 0, 0, false},
		{"m:16", "", 0, 0, 0, false},
		{"m:axb", "", 0, 0, 0, false},
		{"m:0x5", "", 0, 0, 0, false},
		{"m:4x4:nan", "", 0, 0, 0, false},
		{"m:4x4:2:1:extra", "", 0, 0, 0, false},
	} {
		name, d, err := buildMesh(tc.spec)
		if !tc.ok {
			if err == nil {
				t.Errorf("%q: accepted, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		if name != tc.name || d.Width() != tc.w || d.Height() != tc.h || d.FaultCount() != tc.k {
			t.Errorf("%q: got %s %dx%d k=%d", tc.spec, name, d.Width(), d.Height(), d.FaultCount())
		}
	}
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port with a
// preloaded mesh, queries it over real HTTP, then cancels the context
// and requires a clean drain.
func TestDaemonEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // run re-listens on the same port

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", addr, "-mesh", "m:16x16:5:1", "-quiet", "-drain-timeout", "2s",
		}, &out)
	}()

	base := "http://" + addr
	// Wait for the daemon to come up.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never came up: %v\n%s", err, out.String())
	}
	resp.Body.Close()

	body := strings.NewReader(`{"src":{"x":0,"y":0},"dst":{"x":15,"y":15}}`)
	r2, err := http.Post(base+"/v1/mesh/m/route", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Hops int `json:"hops"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || rr.Hops != 30 {
		t.Errorf("route = %d hops=%d, want 200 hops=30", r2.StatusCode, rr.Hops)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("missing drain log:\n%s", out.String())
	}
}

func TestDaemonBadMeshSpec(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-mesh", "bad"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want spec failure", err)
	}
}

func TestDaemonAddrInUse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var out bytes.Buffer
	err = run(context.Background(), []string{"-addr", l.Addr().String()}, &out)
	if err == nil {
		t.Fatal("second bind succeeded")
	}
	if !strings.Contains(fmt.Sprint(err), "in use") {
		t.Logf("note: bind error was %v", err)
	}
}
