package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestBuildMeshSpecs(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		name    string
		w, h, k int
		ok      bool
	}{
		{"m:16x16", "m", 16, 16, 0, true},
		{"prod:200x200:40:1", "prod", 200, 200, 40, true},
		{"a:8x4:3", "a", 8, 4, 3, true},
		{"noseparator", "", 0, 0, 0, false},
		{"m:16", "", 0, 0, 0, false},
		{"m:axb", "", 0, 0, 0, false},
		{"m:0x5", "", 0, 0, 0, false},
		{"m:4x4:nan", "", 0, 0, 0, false},
		{"m:4x4:2:1:extra", "", 0, 0, 0, false},
	} {
		name, d, err := buildMesh(tc.spec)
		if !tc.ok {
			if err == nil {
				t.Errorf("%q: accepted, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		if name != tc.name || d.Width() != tc.w || d.Height() != tc.h || d.FaultCount() != tc.k {
			t.Errorf("%q: got %s %dx%d k=%d", tc.spec, name, d.Width(), d.Height(), d.FaultCount())
		}
	}
}

// TestDaemonEndToEnd boots the daemon on an ephemeral port with a
// preloaded mesh, queries it over real HTTP, then cancels the context
// and requires a clean drain.
func TestDaemonEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // run re-listens on the same port

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", addr, "-mesh", "m:16x16:5:1", "-quiet", "-drain-timeout", "2s",
		}, &out)
	}()

	base := "http://" + addr
	// Wait for the daemon to come up.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never came up: %v\n%s", err, out.String())
	}
	resp.Body.Close()

	body := strings.NewReader(`{"src":{"x":0,"y":0},"dst":{"x":15,"y":15}}`)
	r2, err := http.Post(base+"/v1/mesh/m/route", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Hops int `json:"hops"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || rr.Hops != 30 {
		t.Errorf("route = %d hops=%d, want 200 hops=30", r2.StatusCode, rr.Hops)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("missing drain log:\n%s", out.String())
	}
}

func TestDaemonBadMeshSpec(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-mesh", "bad"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want spec failure", err)
	}
}

func TestDaemonAddrInUse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var out bytes.Buffer
	err = run(context.Background(), []string{"-addr", l.Addr().String()}, &out)
	if err == nil {
		t.Fatal("second bind succeeded")
	}
	if !strings.Contains(fmt.Sprint(err), "in use") {
		t.Logf("note: bind error was %v", err)
	}
}

// freeAddr reserves an ephemeral port and releases it for run() to
// re-listen on — the same pattern TestDaemonEndToEnd uses.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, base string, out fmt.Stringer) {
	t.Helper()
	var err error
	for i := 0; i < 150; i++ {
		var resp *http.Response
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never came up: %v\n%s", err, out.String())
}

func TestReplicationFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-replication-addr", ":0"},        // no -data-dir
		{"-replicate-from", "localhost:1"}, // no -data-dir
		{"-data-dir", t.TempDir(), "-replication-addr", ":0", "-replicate-from", "localhost:1"}, // both roles
		{"-data-dir", t.TempDir(), "-replicate-from", "localhost:1", "-mesh", "m:8x8"},          // preload on a replica
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted, want validation error", args)
		}
	}
}

// TestDrainClosesAllPlanes covers the shutdown bug: a SIGTERM-style
// cancel must drain the HTTP plane AND close the binary listener's
// persistent connections and the replication listener — none of them
// may outlive run().
func TestDrainClosesAllPlanes(t *testing.T) {
	addr, binAddr, repAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{
			"-addr", addr, "-binary-addr", binAddr,
			"-data-dir", t.TempDir(), "-replication-addr", repAddr,
			"-mesh", "m:8x8:2:1", "-quiet", "-drain-timeout", "2s",
		}, &out)
	}()
	waitHealthy(t, "http://"+addr, &out)

	// A persistent, idle binary connection — exactly what a pipelining
	// client parks between bursts.
	conn, err := net.Dial("tcp", binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain with a parked binary connection")
	}
	// The parked connection must have been closed by the drain.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("binary connection still open after drain")
	}
}

// TestDaemonReplicaPair boots a primary and a read-only replica as two
// full daemons wired by -replication-addr/-replicate-from, mutates the
// primary over HTTP, and requires the replica to converge, answer
// queries identically, and refuse writes.
func TestDaemonReplicaPair(t *testing.T) {
	pAddr, repAddr := freeAddr(t), freeAddr(t)
	rAddr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var pOut, rOut bytes.Buffer
	perrc := make(chan error, 1)
	go func() {
		perrc <- run(ctx, []string{
			"-addr", pAddr, "-data-dir", t.TempDir(), "-replication-addr", repAddr,
			"-quiet", "-drain-timeout", "2s",
		}, &pOut)
	}()
	waitHealthy(t, "http://"+pAddr, &pOut)
	rerrc := make(chan error, 1)
	go func() {
		rerrc <- run(ctx, []string{
			"-addr", rAddr, "-data-dir", t.TempDir(), "-replicate-from", repAddr,
			"-quiet", "-drain-timeout", "2s",
		}, &rOut)
	}()
	waitHealthy(t, "http://"+rAddr, &rOut)

	// Create a mesh and inject faults on the primary.
	body := strings.NewReader(`{"name":"m","width":16,"height":16,"faults":[{"x":4,"y":4},{"x":5,"y":5}]}`)
	resp, err := http.Post("http://"+pAddr+"/v1/mesh", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create = %d", resp.StatusCode)
	}

	// The replica converges: same mesh, same route answer.
	route := `{"src":{"x":0,"y":0},"dst":{"x":15,"y":15}}`
	var hops int
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Post("http://"+rAddr+"/v1/mesh/m/route", "application/json", strings.NewReader(route))
		if err == nil && r.StatusCode == 200 {
			var rr struct {
				Hops int `json:"hops"`
			}
			json.NewDecoder(r.Body).Decode(&rr)
			r.Body.Close()
			hops = rr.Hops
			break
		}
		if err == nil {
			r.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never served the mesh\nprimary:\n%s\nreplica:\n%s", pOut.String(), rOut.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	pr, err := http.Post("http://"+pAddr+"/v1/mesh/m/route", "application/json", strings.NewReader(route))
	if err != nil {
		t.Fatal(err)
	}
	var prr struct {
		Hops int `json:"hops"`
	}
	json.NewDecoder(pr.Body).Decode(&prr)
	pr.Body.Close()
	if hops != prr.Hops {
		t.Fatalf("replica hops %d != primary hops %d", hops, prr.Hops)
	}

	// Writes on the replica are refused.
	wr, err := http.Post("http://"+rAddr+"/v1/mesh", "application/json",
		strings.NewReader(`{"name":"x","width":4,"height":4}`))
	if err != nil {
		t.Fatal(err)
	}
	wr.Body.Close()
	if wr.StatusCode != 403 {
		t.Fatalf("replica write = %d, want 403", wr.StatusCode)
	}

	// Roles visible over /replication.
	var status struct {
		Role string `json:"role"`
	}
	sr, err := http.Get("http://" + rAddr + "/replication")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(sr.Body).Decode(&status)
	sr.Body.Close()
	if status.Role != "replica" {
		t.Fatalf("replica role = %q", status.Role)
	}

	cancel()
	for _, c := range []chan error{perrc, rerrc} {
		select {
		case err := <-c:
			if err != nil {
				t.Fatalf("daemon exit: %v\nprimary:\n%s\nreplica:\n%s", err, pOut.String(), rOut.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}
}
