package main

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"sort"
	"syscall"
	"testing"
	"time"

	"extmesh"
	"extmesh/meshclient"
)

// buildDaemon compiles the meshserved binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "meshserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary against dataDir and waits until
// /readyz answers 200. It returns the process and a client.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, *meshclient.Client) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-fsync", "always", "-quiet")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	c, err := meshclient.New(meshclient.Options{
		BaseURL:     "http://" + addr,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ready, err := c.Ready(context.Background())
		if err == nil && ready {
			return cmd, c
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon on %s never became ready", addr)
	return nil, nil
}

// batchFor is the scripted mutation sequence both the crashed and the
// control daemon apply: a fail every step, plus a recover of an older
// fault on the back half, so replay must reproduce interleaved
// fail/recover history, not just accumulation.
func batchFor(i int) meshclient.FaultsRequest {
	req := meshclient.FaultsRequest{Fail: []extmesh.Coord{{X: i, Y: i}}}
	if i >= 5 {
		req.Recover = []extmesh.Coord{{X: i - 5, Y: i - 5}}
	}
	return req
}

// queryBattery collects raw response bytes for a fixed set of queries;
// two servers with identical mesh state must produce identical bytes.
func queryBattery(t *testing.T, c *meshclient.Client) []string {
	t.Helper()
	ctx := context.Background()
	var out []string
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"src":{"x":%d,"y":%d},"dst":{"x":%d,"y":%d}}`,
			(i*3)%16, (i*5)%16, (i*7+1)%16, (i*11+3)%16)
		for _, ep := range []string{"/route", "/safe", "/ensure", "/has-minimal-path"} {
			resp, err := c.Do(ctx, "POST", "/v1/mesh/m"+ep, []byte(body), true)
			if err != nil {
				// Unroutable pairs answer 422; capture status+body either way.
				if resp == nil {
					t.Fatalf("battery %s: %v", ep, err)
				}
			}
			out = append(out, fmt.Sprintf("%s %d %s", ep, resp.Status, resp.Body))
		}
	}
	return out
}

func sortedFaults(st *meshclient.MeshState) []extmesh.Coord {
	fs := append([]extmesh.Coord(nil), st.Faults...)
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].X != fs[j].X {
			return fs[i].X < fs[j].X
		}
		return fs[i].Y < fs[j].Y
	})
	return fs
}

// TestCrashRecoverySIGKILL is the headline durability test: a daemon
// is killed with SIGKILL halfway through a scripted mutation sequence,
// restarted over the same data dir, and driven through the remaining
// mutations. Its final state and query answers must be identical to a
// control daemon that ran the whole sequence uninterrupted.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemon processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	ctx := context.Background()

	// Phase 1: boot, create the mesh, apply the first half.
	cmd, c := startDaemon(t, bin, dataDir)
	if _, err := c.CreateMesh(ctx, "m", 16, 16, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.ApplyFaults(ctx, "m", batchFor(i)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	// Also journal an inject-schedule admin event mid-history.
	if _, err := c.InjectSpec(ctx, "m", "fail@0:12,12;recover@1:12,12;fail@2:13,13", 10, 1); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: no drain, no final snapshot — recovery must come from
	// the journal alone (-fsync always made every ack durable).
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: restart over the same dir, finish the sequence.
	_, c2 := startDaemon(t, bin, dataDir)
	st, err := c2.GetMesh(ctx, "m")
	if err != nil {
		t.Fatalf("mesh lost across SIGKILL: %v", err)
	}
	// Mid-point sanity: 5 fails + net one fault from the spec = 6.
	if st.Faults == nil || len(st.Faults) != 6 {
		t.Fatalf("recovered mid-point faults = %v, want 6", st.Faults)
	}
	for i := 5; i < 10; i++ {
		if _, err := c2.ApplyFaults(ctx, "m", batchFor(i)); err != nil {
			t.Fatalf("post-recovery batch %d: %v", i, err)
		}
	}

	// Control: the same full sequence, never interrupted.
	_, cc := startDaemon(t, bin, t.TempDir())
	if _, err := cc.CreateMesh(ctx, "m", 16, 16, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cc.ApplyFaults(ctx, "m", batchFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cc.InjectSpec(ctx, "m", "fail@0:12,12;recover@1:12,12;fail@2:13,13", 10, 1); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		if _, err := cc.ApplyFaults(ctx, "m", batchFor(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Compare final states: dimensions, version, fault set.
	got, err := c2.GetMesh(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cc.GetMesh(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != want.Width || got.Height != want.Height {
		t.Errorf("dimensions %dx%d, want %dx%d", got.Width, got.Height, want.Width, want.Height)
	}
	if got.Version != want.Version {
		t.Errorf("version after recovery = %d, control = %d", got.Version, want.Version)
	}
	gf, wf := sortedFaults(got), sortedFaults(want)
	if len(gf) != len(wf) {
		t.Fatalf("fault count = %d, control = %d (%v vs %v)", len(gf), len(wf), gf, wf)
	}
	for i := range gf {
		if gf[i] != wf[i] {
			t.Fatalf("fault sets diverge: %v vs control %v", gf, wf)
		}
	}

	// Query answers must be bit-identical: same routes, same verdicts.
	gb, wb := queryBattery(t, c2), queryBattery(t, cc)
	for i := range gb {
		if gb[i] != wb[i] {
			t.Errorf("battery[%d] diverges:\n recovered: %s\n control:   %s", i, gb[i], wb[i])
		}
	}

	// Stats agree on durable fields (reach-cache counters are runtime
	// state and legitimately differ).
	gs, err := c2.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := cc.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if gs.Faults != ws.Faults || gs.Version != ws.Version {
		t.Errorf("stats diverge: faults %d/%d version %d/%d", gs.Faults, ws.Faults, gs.Version, ws.Version)
	}
}

// TestRestartAfterGracefulDrain checks the happy path: SIGTERM writes
// a final snapshot and the next boot recovers from it replay-free.
func TestRestartAfterGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and restarts real daemon processes")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	ctx := context.Background()

	cmd, c := startDaemon(t, bin, dataDir)
	if _, err := c.CreateMesh(ctx, "m", 12, 12, []extmesh.Coord{{X: 2, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{{X: 7, Y: 7}}}); err != nil {
		t.Fatal(err)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}

	_, c2 := startDaemon(t, bin, dataDir)
	st, err := c2.GetMesh(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Faults) != 2 || st.Version != 2 {
		t.Fatalf("recovered state = %d faults version %d, want 2/2", len(st.Faults), st.Version)
	}
}
