package main

import (
	"strings"
	"testing"
)

func TestRunTable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-k", "6", "-cycles", "60", "-warmup", "20", "-rates", "0.02,0.1"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"wu", "oracle", "xy", "latency", "12x12 mesh with 6 faults"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Three routers x two rates = 6 data lines + header + comment.
	lines := strings.Count(strings.TrimSpace(out), "\n")
	if lines != 7 {
		t.Errorf("expected 8 lines, got %d:\n%s", lines+1, out)
	}
}

func TestRunWithCapacity(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "10", "-k", "4", "-cycles", "80", "-warmup", "20",
		"-rates", "0.3", "-capacity", "1"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "stranded") {
		t.Errorf("missing column header:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-rates", "abc"}, &sb); err == nil {
		t.Error("bad rate should fail")
	}
	if err := run([]string{"-n", "4", "-k", "100"}, &sb); err == nil {
		t.Error("too many faults should fail")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunWormhole(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "10", "-k", "4", "-cycles", "80", "-warmup", "20",
		"-rates", "0.01", "-wormhole", "-flits", "4", "-buffers", "1"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "wormhole (4 flits, 1-flit buffers") {
		t.Errorf("missing wormhole header:\n%s", sb.String())
	}
}

func TestRunOnlineFaults(t *testing.T) {
	for _, policy := range []string{"reroute", "degrade", "drop"} {
		var sb strings.Builder
		err := run([]string{"-n", "12", "-k", "4", "-cycles", "80", "-warmup", "20",
			"-rates", "0.05", "-fault-schedule", "bursts:count=2,size=4,spread=1", "-policy", policy}, &sb)
		if err != nil {
			t.Fatalf("%s: run: %v", policy, err)
		}
		out := sb.String()
		for _, want := range []string{"online faults", "policy " + policy, "rerouted", "degraded", "dropped"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s: output missing %q:\n%s", policy, want, out)
			}
		}
	}
}

func TestRunOnlineFaultsWormhole(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-k", "4", "-cycles", "80", "-warmup", "20",
		"-rates", "0.02", "-wormhole", "-flits", "4", "-fault-rate", "0.02", "-policy", "degrade"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "online faults: random:rate=0.02") {
		t.Errorf("missing online header:\n%s", sb.String())
	}
}

func TestRunOnlineFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fault-rate", "0.1", "-fault-schedule", "none"}, &sb); err == nil {
		t.Error("fault-rate plus fault-schedule should fail")
	}
	if err := run([]string{"-fault-rate", "0.1", "-policy", "yolo"}, &sb); err == nil {
		t.Error("unknown policy should fail")
	}
	if err := run([]string{"-fault-schedule", "warp:rate=1"}, &sb); err == nil {
		t.Error("unknown schedule kind should fail")
	}
}

// TestRunStaticOutputUnchanged pins the static output to the exact
// shape the pre-online version printed: no extra columns, no online
// header line.
func TestRunStaticOutputUnchanged(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-n", "12", "-k", "6", "-cycles", "60", "-warmup", "20", "-rates", "0.02"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, banned := range []string{"online", "rerouted", "events"} {
		if strings.Contains(out, banned) {
			t.Errorf("static output gained online text %q:\n%s", banned, out)
		}
	}
}
