// Command meshload runs the store-and-forward traffic simulator on a
// faulty mesh and prints latency/throughput versus injection rate, for
// Wu's limited-information protocol and the full-information oracle.
// It extends the paper's evaluation from path-existence percentages to
// communication-subsystem performance under load.
//
// With -fault-rate or -fault-schedule the run becomes an online
// fault-tolerance experiment: faults arrive (and possibly recover)
// mid-run, fault regions and safety levels update incrementally, and
// in-flight packets whose link died are rerouted, degraded to
// Extension-1 spare-neighbor detours, or dropped per -policy.
//
// Usage:
//
//	meshload [-n 32] [-k 30] [-seed 1] [-cycles 400] [-warmup 100]
//	         [-rates "0.01,0.02,0.05,0.1,0.2"]
//	         [-fault-rate 0.001 | -fault-schedule "bursts:count=2,size=6"]
//	         [-policy reroute|degrade|drop] [-fault-seed 7]
//	         [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"extmesh/internal/cli"
	"extmesh/internal/fault"
	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/traffic"
	"extmesh/internal/wormhole"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshload", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 32, "mesh side length")
		k          = fs.Int("k", 30, "number of random faults")
		seed       = fs.Int64("seed", 1, "PRNG seed")
		cycles     = fs.Int("cycles", 400, "measured cycles")
		warmup     = fs.Int("warmup", 100, "warmup cycles")
		rates      = fs.String("rates", "0.01,0.02,0.05,0.1,0.2", "comma-separated injection rates")
		capacity   = fs.Int("capacity", 0, "per-link queue capacity (0 = unbounded)")
		wh         = fs.Bool("wormhole", false, "flit-level wormhole switching instead of store-and-forward")
		flits      = fs.Int("flits", 8, "flits per packet (wormhole mode)")
		buffers    = fs.Int("buffers", 2, "flit buffer depth per virtual channel (wormhole mode)")
		faultSched = fs.String("fault-schedule", "", "online fault schedule (random:rate=R, bursts:count=B,size=S,spread=P, transient:rate=R,repair=C, or fail@CYCLE:X,Y;... events)")
		faultRate  = fs.Float64("fault-rate", 0, "shorthand for -fault-schedule random:rate=R")
		policyName = fs.String("policy", "reroute", "in-flight packet policy under online faults: reroute, degrade or drop")
		faultSeed  = fs.Int64("fault-seed", 0, "fault schedule seed (0 = seed+1)")
		prof       = cli.ProfileFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()
	var rateList []float64
	for _, s := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %v", s, err)
		}
		rateList = append(rateList, v)
	}

	m := mesh.Mesh{Width: *n, Height: *n}
	rng := rand.New(rand.NewSource(*seed))
	faults, err := fault.RandomFaults(m, *k, rng, nil)
	if err != nil {
		return err
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		return err
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()

	routers := []struct {
		name    string
		fn      traffic.RoutingFunc
		rebuild func([]bool) traffic.RoutingFunc
	}{
		{"wu", traffic.WuRouting(route.NewRouter(m, blocked)),
			func(b []bool) traffic.RoutingFunc { return traffic.WuRouting(route.NewRouter(m, b)) }},
		{"oracle", traffic.OracleRouting(m, blocked),
			func(b []bool) traffic.RoutingFunc { return traffic.OracleRouting(m, b) }},
		{"xy", traffic.XYRouting(m, blocked),
			func(b []bool) traffic.RoutingFunc { return traffic.XYRouting(m, b) }},
	}

	// Online fault injection: parse the schedule (or the -fault-rate
	// shorthand) and the packet policy up front.
	spec := *faultSched
	if *faultRate > 0 {
		if spec != "" {
			return fmt.Errorf("-fault-rate and -fault-schedule are mutually exclusive")
		}
		spec = fmt.Sprintf("random:rate=%g", *faultRate)
	}
	online := spec != ""
	var sched inject.Schedule
	policy := traffic.PolicyReroute
	fseed := *faultSeed
	if online {
		var err error
		if policy, err = traffic.ParsePolicy(*policyName); err != nil {
			return err
		}
		if fseed == 0 {
			fseed = *seed + 1
		}
		if sched, err = inject.Parse(m, *warmup+*cycles, fseed, spec); err != nil {
			return err
		}
	}

	mode := "store-and-forward"
	if *wh {
		mode = fmt.Sprintf("wormhole (%d flits, %d-flit buffers, 4 class VCs)", *flits, *buffers)
	}
	fmt.Fprintf(out, "# %s traffic on a %dx%d mesh with %d faults (seed %d), %d+%d cycles, guaranteed pairs only\n",
		mode, *n, *n, *k, *seed, *warmup, *cycles)
	if online {
		fmt.Fprintf(out, "# online faults: %s (%d events, fault seed %d), policy %v\n",
			spec, len(sched), fseed, policy)
		fmt.Fprintf(out, "%8s  %8s  %10s  %10s  %10s  %10s  %10s  %10s  %8s  %8s  %8s  %8s\n",
			"router", "rate", "delivered", "stranded", "latency", "stretch", "maxqueue", "throughput",
			"events", "rerouted", "degraded", "dropped")
	} else {
		fmt.Fprintf(out, "%8s  %8s  %10s  %10s  %10s  %10s  %10s  %10s\n",
			"router", "rate", "delivered", "stranded", "latency", "stretch", "maxqueue", "throughput")
	}
	for _, r := range routers {
		for _, rate := range rateList {
			var (
				delivered, stranded, maxq int
				latency, stretch, thr     float64
				deadlocked                bool
				ost                       traffic.OnlineStats
			)
			var on *traffic.Online
			if online {
				on = &traffic.Online{
					InitialFaults: faults,
					Schedule:      sched,
					Policy:        policy,
					Rebuild:       r.rebuild,
				}
			}
			if *wh {
				cfg := wormhole.Config{
					M:              m,
					Blocked:        blocked,
					Route:          r.fn,
					FlitsPerPacket: *flits,
					BufferFlits:    *buffers,
					ClassVCs:       true,
					InjectionRate:  rate,
					Cycles:         *cycles,
					Warmup:         *warmup,
					Seed:           *seed,
					GuaranteedOnly: true,
				}
				var st wormhole.Stats
				var err error
				if online {
					st, ost, err = wormhole.RunOnline(cfg, on)
				} else {
					st, err = wormhole.Run(cfg)
				}
				if err != nil {
					return err
				}
				delivered, stranded = st.Delivered, st.Undeliverable
				latency, stretch, thr = st.AvgLatency, st.AvgStretch, st.Throughput
				deadlocked = st.Deadlocked
			} else {
				cfg := traffic.Config{
					M:              m,
					Blocked:        blocked,
					Route:          r.fn,
					InjectionRate:  rate,
					Cycles:         *cycles,
					Warmup:         *warmup,
					Seed:           *seed,
					GuaranteedOnly: true,
					QueueCapacity:  *capacity,
				}
				var st traffic.Stats
				var err error
				if online {
					st, ost, err = traffic.RunOnline(cfg, on)
				} else {
					st, err = traffic.Run(cfg)
				}
				if err != nil {
					return err
				}
				delivered, stranded, maxq = st.Delivered, st.Undeliverable, st.MaxQueue
				latency, stretch, thr = st.AvgLatency, st.AvgStretch, st.Throughput
				deadlocked = st.Deadlocked
			}
			note := ""
			if deadlocked {
				note = "  DEADLOCK"
			}
			if online {
				fmt.Fprintf(out, "%8s  %8.3f  %10d  %10d  %10.2f  %10.3f  %10d  %10.4f  %8d  %8d  %8d  %8d%s\n",
					r.name, rate, delivered, stranded, latency, stretch, maxq, thr,
					ost.Events, ost.Rerouted, ost.Degraded, ost.Dropped(), note)
			} else {
				fmt.Fprintf(out, "%8s  %8.3f  %10d  %10d  %10.2f  %10.3f  %10d  %10.4f%s\n",
					r.name, rate, delivered, stranded, latency, stretch, maxq, thr, note)
			}
		}
	}
	return nil
}
