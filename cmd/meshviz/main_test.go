package main

import (
	"strings"
	"testing"
)

const paperFaults = "3,3;3,4;4,4;5,4;6,4;2,5;5,5;3,6"

func TestRunPlainGrid(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-faults", paperFaults}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "F") || !strings.Contains(out, "o") {
		t.Errorf("grid missing fault/deactivated symbols:\n%s", out)
	}
	if !strings.Contains(out, "deactivated: 12 (blocks) / 8 (MCC)") {
		t.Errorf("summary line wrong:\n%s", out)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("legend missing")
	}
}

func TestRunWithRoute(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-faults", paperFaults, "-src", "0,0", "-dst", "9,5"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"assurance: minimal, 14 hops", "S", "D", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMCC(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-faults", paperFaults, "-model", "mcc"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "o deactivated (mcc)") {
		t.Error("MCC legend missing")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "nope"}, &sb); err == nil {
		t.Error("bad model should fail")
	}
	if err := run([]string{"-src", "bad", "-dst", "1,1"}, &sb); err == nil {
		t.Error("bad source should fail")
	}
	if err := run([]string{"-src", "1,1", "-dst", "bad"}, &sb); err == nil {
		t.Error("bad destination should fail")
	}
	if err := run([]string{"-faults", "99,99"}, &sb); err == nil {
		t.Error("fault outside mesh should fail")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunWithLines(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "12", "-h", "12", "-faults", paperFaults, "-lines"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"1 L1 line", "3 L3 line", "1", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithLevels(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-w", "10", "-h", "8", "-faults", "4,4", "-levels"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "1") || !strings.Contains(out, "~") {
		t.Errorf("levels heatmap missing digits:\n%s", out)
	}
}
