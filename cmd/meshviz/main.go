// Command meshviz draws a faulty 2-D mesh as ASCII art: faults,
// deactivated nodes under the chosen fault model, and optionally the
// path Wu's protocol takes between a source and a destination.
//
// Usage:
//
//	meshviz -w 24 -h 16 -k 14 -seed 5
//	meshviz -w 12 -h 12 -faults "3,3;3,4;4,4;5,4;6,4;2,5;5,5;3,6" \
//	        -src 0,0 -dst 11,5 -model mcc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"extmesh"
	"extmesh/internal/cli"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshviz", flag.ContinueOnError)
	var (
		width   = fs.Int("w", 24, "mesh width")
		height  = fs.Int("h", 16, "mesh height")
		faults  = fs.String("faults", "", "explicit fault list x1,y1;x2,y2;...")
		k       = fs.Int("k", 0, "number of random faults (when -faults is empty)")
		seed    = fs.Int64("seed", 1, "PRNG seed for random faults")
		srcFlag = fs.String("src", "", "optional source x,y to route from")
		dstFlag = fs.String("dst", "", "optional destination x,y to route to")
		model   = fs.String("model", "blocks", "fault model: blocks or mcc")
		lines   = fs.Bool("lines", false, "overlay the boundary lines (1 = L1, 3 = L3, + = both)")
		levels  = fs.Bool("levels", false, "shade free nodes by scalar safety level (0-9, then ~ for far)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fm := extmesh.Blocks
	if *model == "mcc" {
		fm = extmesh.MCC
	} else if *model != "blocks" {
		return fmt.Errorf("unknown model %q", *model)
	}

	m := mesh.Mesh{Width: *width, Height: *height}
	var protect []mesh.Coord
	var src, dst mesh.Coord
	haveRoute := *srcFlag != "" && *dstFlag != ""
	if haveRoute {
		var err error
		if src, err = cli.ParseCoord(*srcFlag); err != nil {
			return err
		}
		if dst, err = cli.ParseCoord(*dstFlag); err != nil {
			return err
		}
		protect = append(protect, src, dst)
	}
	flist, err := cli.Faults(m, *faults, *k, *seed, protect...)
	if err != nil {
		return err
	}
	net, err := extmesh.New(*width, *height, flist)
	if err != nil {
		return err
	}

	layers := []viz.CellFunc{viz.Base()}
	if *levels {
		grid, lerr := net.SafetyGrid(fm)
		if lerr != nil {
			return lerr
		}
		layers = append(layers, viz.CellFunc(func(c mesh.Coord) rune {
			lvl := grid.At(c).Min()
			switch {
			case lvl >= 10:
				return '~'
			default:
				return rune('0' + lvl)
			}
		}))
	}
	// Deactivated (healthy but swallowed) nodes, then faults on top.
	region := make([]bool, m.Size())
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			c := mesh.Coord{X: x, Y: y}
			if haveRoute {
				if net.InRegionFor(c, fm, src, dst) && !net.IsFaulty(c) {
					region[m.Index(c)] = true
				}
			} else if net.InRegion(c, fm) && !net.IsFaulty(c) {
				region[m.Index(c)] = true
			}
		}
	}
	layers = append(layers, viz.MarkGrid(m, region, 'o'))

	legend := []string{". free", "F faulty", "o deactivated (" + fm.String() + ")"}
	if *lines {
		blocked := make([]bool, m.Size())
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if haveRoute {
				blocked[i] = net.InRegionFor(c, fm, src, dst)
			} else {
				blocked[i] = net.InRegion(c, fm)
			}
		}
		l1 := make([]bool, m.Size())
		l3 := make([]bool, m.Size())
		for c, tags := range route.Lines(m, blocked) {
			for _, tag := range tags {
				if tag.Kind == route.LineL1 {
					l1[m.Index(c)] = true
				} else {
					l3[m.Index(c)] = true
				}
			}
		}
		lineCell := func(c mesh.Coord) rune {
			i := m.Index(c)
			switch {
			case l1[i] && l3[i]:
				return '+'
			case l1[i]:
				return '1'
			case l3[i]:
				return '3'
			default:
				return 0
			}
		}
		layers = append(layers, viz.CellFunc(lineCell))
		legend = append(legend, "1 L1 line", "3 L3 line", "+ both")
	}
	layers = append(layers, viz.MarkSet(net.Faults(), 'F'))
	if haveRoute {
		path, a, rerr := net.RouteAssured(src, dst, fm, extmesh.DefaultStrategy())
		if rerr != nil {
			if p2, err2 := net.Route(src, dst, fm); err2 == nil {
				path = p2
				fmt.Fprintf(out, "no guarantee at the source; adaptive route still found a path\n")
			} else {
				fmt.Fprintf(out, "routing failed: %v\n", rerr)
			}
		} else {
			fmt.Fprintf(out, "assurance: %v, %d hops\n", a.Verdict, path.Hops())
		}
		if len(path) > 0 {
			layers = append(layers, viz.MarkSet(path, '*'))
			legend = append(legend, "* path")
		}
		layers = append(layers, viz.MarkOne(src, 'S'), viz.MarkOne(dst, 'D'))
		legend = append(legend, "S source", "D destination")
	}

	if err := viz.Render(out, m, viz.Overlay(layers...)); err != nil {
		return err
	}
	fmt.Fprintf(out, "faults: %d, blocks: %d, deactivated: %d (blocks) / %d (MCC)\n",
		len(flist), len(net.Blocks()), net.DisabledCount(extmesh.Blocks), net.DisabledCount(extmesh.MCC))
	return viz.Legend(out, legend...)
}
