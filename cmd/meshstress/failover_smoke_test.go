package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"extmesh"
	"extmesh/meshclient"
)

// freePort reserves a loopback port by listening and closing; the tiny
// reuse race is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// smokeNode is one real meshserved process in the failover cluster.
type smokeNode struct {
	cmd     *exec.Cmd
	httpURL string
	log     *bytes.Buffer
}

// startClusterNode launches a meshserved process as a failover cluster
// member. Node 0 starts primary; the rest follow it.
func startClusterNode(t *testing.T, bin, dataDir string, httpAddr string, repAddrs []string, idx int) *smokeNode {
	t.Helper()
	peers := make([]string, 0, len(repAddrs)-1)
	for i, a := range repAddrs {
		if i != idx {
			peers = append(peers, a)
		}
	}
	args := []string{
		"-addr", httpAddr,
		"-data-dir", dataDir,
		"-fsync", "always",
		"-quiet",
		"-replication-addr", repAddrs[idx],
		"-peers", strings.Join(peers, ","),
		"-node-id", fmt.Sprintf("n%d", idx),
		"-failover-timeout", "600ms",
		"-failover-rank", fmt.Sprint(idx),
		"-rep-heartbeat", "100ms",
	}
	if idx != 0 {
		args = append(args, "-replicate-from", repAddrs[0])
	}
	n := &smokeNode{httpURL: "http://" + httpAddr, log: &bytes.Buffer{}}
	n.cmd = exec.Command(bin, args...)
	n.cmd.Stdout = n.log
	n.cmd.Stderr = n.log
	if err := n.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if n.cmd.Process != nil {
			n.cmd.Process.Kill()
			n.cmd.Wait()
		}
	})
	return n
}

func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", dir, err, out)
	}
	return bin
}

// TestFailoverSmoke is the end-to-end acceptance run for automatic
// failover, over real processes: three daemons form a cluster,
// meshstress -kill-primary-after streams acknowledged fault writes and
// SIGKILLs the primary mid-run, a follower promotes itself, the writers
// fail over to it, and the audit must report zero acked-write loss.
func TestFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives four real processes")
	}
	served := buildBinary(t, "../meshserved", "meshserved")
	stress := buildBinary(t, ".", "meshstress")

	httpAddrs := []string{freePort(t), freePort(t), freePort(t)}
	repAddrs := []string{freePort(t), freePort(t), freePort(t)}
	nodes := make([]*smokeNode, 3)
	for i := range nodes {
		nodes[i] = startClusterNode(t, served, t.TempDir(), httpAddrs[i], repAddrs, i)
	}

	// The cluster accepts a write only once a follower confirms it, so a
	// successful mesh creation doubles as the "cluster formed" gate.
	cc, err := meshclient.NewCluster(meshclient.ClusterOptions{
		Primary:  nodes[0].httpURL,
		Replicas: []string{nodes[1].httpURL, nodes[2].httpURL},
		Node: meshclient.Options{
			BaseBackoff: 20 * time.Millisecond,
			MaxBackoff:  200 * time.Millisecond,
			MaxRetries:  30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cc.CreateMesh(ctx, "m", 80, 80, []extmesh.Coord{}); err != nil {
		t.Fatalf("cluster never formed: %v\nprimary log:\n%s", err, nodes[0].log)
	}

	var out bytes.Buffer
	args := []string{
		"-addr", nodes[0].httpURL,
		"-replicas", nodes[1].httpURL + "," + nodes[2].httpURL,
		"-mesh", "m",
		"-workers", "4",
		"-duration", "6s",
		"-retries", "5",
		"-kill-primary-after", "1s",
		"-kill-primary-pid", fmt.Sprint(nodes[0].cmd.Process.Pid),
	}
	cmd := exec.Command(stress, args...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("meshstress kill-primary audit failed: %v\n%s\nfollower logs:\n%s\n%s",
			err, out.String(), nodes[1].log, nodes[2].log)
	}
	report := out.String()
	if !strings.Contains(report, "lost: 0") {
		t.Fatalf("audit did not report zero loss:\n%s", report)
	}
	if !strings.Contains(report, "SIGKILL") {
		t.Fatalf("audit never killed the primary:\n%s", report)
	}
	// The promoted node — not the dead one — must be serving writes.
	if strings.Contains(report, "primary now "+nodes[0].httpURL) {
		t.Fatalf("audit still points at the killed primary:\n%s", report)
	}
}
