// Command meshstress is the load driver for meshserved: concurrent
// workers fire route/condition/existence queries at a served mesh and
// report throughput and per-request latency percentiles. Batch mode
// (-batch N) packs N source/destination pairs per request — the way a
// real client amortizes HTTP overhead — so a single daemon instance can
// be driven well past the single-query round-trip ceiling.
//
// Workers share one resilient meshclient.Client: queries are
// idempotent, so shed (429) and transiently failed attempts are
// retried with backoff and a request that eventually succeeds counts
// as a success. The report separates request outcomes from
// attempt-level retry/shed/error counts, so saturation shows up as
// retries and latency, not as spurious failures.
//
// With -proto binary the same query mix is driven over the daemon's
// binary wire-protocol listener (-binary-addr): one persistent
// connection per worker, length-prefixed frames, no HTTP or JSON cost
// per query. The HTTP base URL is still used to resolve the mesh.
//
// With -replicas the query load is driven through
// meshclient.ClusterClient: reads spread round-robin across the replica
// URLs, fail over past dead or tripped nodes, reject answers lagging
// the observed journal watermark by more than -max-staleness records,
// and fall back to the primary when no replica can answer.
//
// With -kill-primary-after the tool becomes a failover audit instead of
// a query benchmark: workers stream acknowledged fault writes through
// the cluster client, the primary process (-kill-primary-pid) is
// SIGKILLed mid-run, the writers ride the failover to the promoted
// node, and the run ends by reading the surviving cluster state and
// asserting that every acknowledged write is present — "lost: 0" is
// the pass condition.
//
// Usage:
//
//	meshstress [-addr http://localhost:8423] [-mesh prod]
//	           [-replicas http://r1:8423,http://r2:8423] [-max-staleness 0]
//	           [-kill-primary-after 3s] [-kill-primary-pid PID]
//	           [-proto json|binary] [-binary-addr localhost:8424]
//	           [-endpoint route|has-minimal-path|ensure|safe]
//	           [-workers 4] [-batch 64] [-paths] [-model blocks|mcc]
//	           [-duration 10s] [-requests 0] [-seed 1]
//	           [-dial-timeout 2s] [-header-timeout 10s]
//	           [-attempt-timeout 30s] [-retries 3]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Example (throughput sweep on a warm 200x200 mesh):
//
//	meshserved -addr :8423 -mesh prod:200x200:40:1 &
//	meshstress -addr http://localhost:8423 -mesh prod -batch 64 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"extmesh"
	"extmesh/internal/cli"
	"extmesh/meshclient"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshstress:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshstress", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8423", "meshserved base URL (the primary in cluster mode)")
		replicas  = fs.String("replicas", "", "comma-separated replica base URLs: drive reads through the cluster client")
		maxStale  = fs.Uint64("max-staleness", 0, "records a replica answer may lag the observed watermark (with -replicas)")
		killAfter = fs.Duration("kill-primary-after", 0, "failover audit: SIGKILL -kill-primary-pid this long into the run and assert zero acked-write loss (requires -replicas)")
		killPid   = fs.Int("kill-primary-pid", 0, "primary daemon PID for -kill-primary-after")
		proto     = fs.String("proto", "json", "transport: json (HTTP endpoints) or binary (wire protocol)")
		binAddr   = fs.String("binary-addr", "localhost:8424", "binary listener address (with -proto binary)")
		meshName  = fs.String("mesh", "prod", "target mesh name")
		endpoint  = fs.String("endpoint", "route", "query kind: route, has-minimal-path, ensure, or safe")
		workers   = fs.Int("workers", 4, "concurrent workers")
		batch     = fs.Int("batch", 64, "pairs per request (1 = single-query endpoint)")
		paths     = fs.Bool("paths", false, "include full paths in route responses (off = hop counts only)")
		model     = fs.String("model", "blocks", "fault model: blocks or mcc")
		duration  = fs.Duration("duration", 10*time.Second, "run length (ignored if -requests > 0)")
		requests  = fs.Int("requests", 0, "stop after this many requests (0 = run for -duration)")
		seed      = fs.Int64("seed", 1, "PRNG seed for query endpoints")

		dialTimeout    = fs.Duration("dial-timeout", 2*time.Second, "TCP connect timeout")
		headerTimeout  = fs.Duration("header-timeout", 10*time.Second, "response-header timeout per attempt")
		attemptTimeout = fs.Duration("attempt-timeout", 30*time.Second, "full-attempt timeout (dial+write+read)")
		retries        = fs.Int("retries", 3, "retries per request (-1 disables)")
		prof           = cli.ProfileFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 || *batch < 1 {
		return fmt.Errorf("-workers and -batch must be >= 1")
	}
	if *endpoint == "safe" {
		*batch = 1 // safe has no batch form
	}

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	nodeOpts := meshclient.Options{
		BaseURL:               *addr,
		DialTimeout:           *dialTimeout,
		ResponseHeaderTimeout: *headerTimeout,
		AttemptTimeout:        *attemptTimeout,
		MaxRetries:            *retries,
		RetrySeed:             *seed,
	}
	client, err := meshclient.New(nodeOpts)
	if err != nil {
		return err
	}
	// Cluster mode: reads spread across replicas with failover and
	// bounded staleness; the single client above still resolves the mesh
	// and serves as the write path inside the cluster client.
	var cluster *meshclient.ClusterClient
	if *replicas != "" {
		if *proto != "json" {
			return fmt.Errorf("-replicas requires -proto json (the binary plane has no cluster client)")
		}
		cluster, err = meshclient.NewCluster(meshclient.ClusterOptions{
			Primary:             *addr,
			Replicas:            strings.Split(*replicas, ","),
			MaxStalenessRecords: *maxStale,
			Node:                nodeOpts,
		})
		if err != nil {
			return err
		}
	}
	info, err := fetchMeshInfo(ctx, client, *meshName)
	if err != nil {
		return err
	}
	if *killAfter > 0 {
		if cluster == nil {
			return fmt.Errorf("-kill-primary-after requires -replicas (cluster mode)")
		}
		if *killPid <= 0 {
			return fmt.Errorf("-kill-primary-after requires -kill-primary-pid")
		}
		return runKillPrimary(ctx, out, cluster, info, *killAfter, *killPid, *duration, *workers)
	}

	// newFire builds one worker's request function plus its cleanup.
	// JSON workers share the one resilient client and a pre-marshaled
	// body pool; binary workers each own a persistent connection and
	// drive the same query mix through the wire protocol.
	var newFire func(w int) (func(context.Context, int) error, func(), error)
	var perReq int
	switch *proto {
	case "json":
		bodies, per, path, err := buildBodies(info, *endpoint, *batch, *model, !*paths, *seed)
		if err != nil {
			return err
		}
		perReq = per
		url := "/v1/mesh/" + *meshName + path
		newFire = func(int) (func(context.Context, int) error, func(), error) {
			if cluster != nil {
				return func(ctx context.Context, i int) error {
					_, err := cluster.DoRead(ctx, "POST", url, bodies[i%len(bodies)])
					return err
				}, func() {}, nil
			}
			return func(ctx context.Context, i int) error {
				_, err := client.Do(ctx, "POST", url, bodies[i%len(bodies)], true)
				return err
			}, func() {}, nil
		}
	case "binary":
		work, per, err := buildBinaryWork(info, *endpoint, *batch, *model, !*paths, *seed)
		if err != nil {
			return err
		}
		perReq = per
		newFire = func(int) (func(context.Context, int) error, func(), error) {
			bc, err := meshclient.NewBinary(meshclient.BinaryOptions{
				Addr:        *binAddr,
				DialTimeout: *dialTimeout,
				CallTimeout: *attemptTimeout,
				MaxRetries:  *retries,
			})
			if err != nil {
				return nil, nil, err
			}
			fire := func(ctx context.Context, i int) error {
				return work[i%len(work)].do(ctx, bc, *meshName)
			}
			return fire, func() { bc.Close() }, nil
		}
	default:
		return fmt.Errorf("unknown -proto %q (want json or binary)", *proto)
	}

	runCtx := ctx
	if *requests <= 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var (
		reqBudget atomic.Int64
		done      atomic.Uint64
		failed    atomic.Uint64
	)
	reqBudget.Store(int64(*requests)) // <= 0 means unlimited

	// One error sample per kind is enough to diagnose a bad run without
	// flooding the report at high failure rates.
	var errMu sync.Mutex
	errSamples := map[string]int{}
	noteErr := func(err error) {
		errMu.Lock()
		if len(errSamples) < 8 {
			errSamples[err.Error()]++
		}
		errMu.Unlock()
	}

	lats := make([][]time.Duration, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fire, cleanup, err := newFire(w)
			if err != nil {
				noteErr(err)
				return
			}
			defer cleanup()
			lat := make([]time.Duration, 0, 4096)
			i := w // stagger work pool starting points across workers
			for runCtx.Err() == nil {
				if *requests > 0 && reqBudget.Add(-1) < 0 {
					break
				}
				j := i
				i++
				t0 := time.Now()
				// Queries are idempotent: both transports retry shed and
				// transiently failed attempts, so a request that
				// eventually succeeds is a success.
				if err := fire(runCtx, j); err != nil {
					if runCtx.Err() != nil {
						break
					}
					failed.Add(1)
					noteErr(err)
					continue
				}
				lat = append(lat, time.Since(t0))
				done.Add(1)
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	ok := done.Load()
	queries := ok * uint64(perReq)
	fmt.Fprintf(out, "meshstress: %s %s %s batch=%d workers=%d\n", *proto, *endpoint, info.label(), perReq, *workers)
	fmt.Fprintf(out, "requests: %d ok, %d errors in %.2fs\n", ok, failed.Load(), elapsed.Seconds())
	if *proto == "json" {
		counts := client.Counts()
		if cluster != nil {
			// Attempt-level counts live in the per-node clients.
			counts = cluster.Primary().Counts()
			for _, rc := range cluster.ReplicaClients() {
				c := rc.Counts()
				counts.Attempts += c.Attempts
				counts.Retries += c.Retries
				counts.Shed += c.Shed
				counts.NetErrors += c.NetErrors
				counts.ServerErrors += c.ServerErrors
			}
		}
		fmt.Fprintf(out, "attempts: %d total, %d retried, %d shed (429), %d net errors, %d server errors\n",
			counts.Attempts, counts.Retries, counts.Shed, counts.NetErrors, counts.ServerErrors)
		if cluster != nil {
			cc := cluster.Counts()
			fmt.Fprintf(out, "cluster: %d reads (%d primary fallbacks), %d failovers, %d stale rejects, %d breaker skips\n",
				cc.Reads, cc.PrimaryReads, cc.Failovers, cc.StaleRejects, cc.BreakerSkips)
		}
	}
	fmt.Fprintf(out, "throughput: %.0f queries/sec (%.1f requests/sec)\n",
		float64(queries)/elapsed.Seconds(), float64(ok)/elapsed.Seconds())
	if len(all) > 0 {
		fmt.Fprintf(out, "latency: p50=%s p90=%s p99=%s max=%s\n",
			pct(all, 0.50), pct(all, 0.90), pct(all, 0.99), all[len(all)-1].Round(time.Microsecond))
	}
	for msg, n := range errSamples {
		fmt.Fprintf(out, "error (%dx): %s\n", n, msg)
	}
	if ok == 0 {
		return fmt.Errorf("no successful requests (%d errors)", failed.Load())
	}
	return nil
}

// runKillPrimary is the failover audit: stream acknowledged fault
// writes through the cluster client, SIGKILL the primary mid-run, keep
// writing through the failover, then read the surviving cluster state
// and verify every acknowledged write landed. Each write fails one
// unique coordinate, which makes the workload resend-safe (a duplicate
// delivery is skipped server-side) and the audit exact (present or
// lost, no ambiguity).
func runKillPrimary(ctx context.Context, out io.Writer, cluster *meshclient.ClusterClient, info meshInfo, killAfter time.Duration, pid int, duration time.Duration, workers int) error {
	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	var next atomic.Int64
	total := int64(info.Width) * int64(info.Height)
	var mu sync.Mutex
	acked := make([]extmesh.Coord, 0, 1024)
	var errs atomic.Int64

	killT := time.AfterFunc(killAfter, func() {
		fmt.Fprintf(out, "kill-primary: SIGKILL pid %d after %s\n", pid, killAfter)
		syscall.Kill(pid, syscall.SIGKILL)
	})
	defer killT.Stop()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				// Wrap past W*H: re-failing a coordinate is idempotent and
				// keeps the audit exact, so the writers never run dry
				// mid-failover on a small mesh.
				i := (next.Add(1) - 1) % total
				c := extmesh.Coord{X: int(i % int64(info.Width)), Y: int((i / int64(info.Width)) % int64(info.Height))}
				body, err := json.Marshal(meshclient.FaultsRequest{Fail: []extmesh.Coord{c}})
				if err != nil {
					errs.Add(1)
					continue
				}
				if _, err := cluster.DoWrite(runCtx, "POST", "/v1/mesh/"+info.Name+"/faults", body, true); err != nil {
					errs.Add(1)
					continue
				}
				mu.Lock()
				acked = append(acked, c)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Audit against whoever won: rediscover the primary, export the
	// mesh, and check off every acknowledged coordinate.
	actx, acancel := context.WithTimeout(ctx, 15*time.Second)
	defer acancel()
	var st *meshclient.MeshState
	var err error
	for actx.Err() == nil {
		cluster.Rediscover(actx)
		if st, err = cluster.GetMesh(actx, info.Name); err == nil {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if st == nil {
		return fmt.Errorf("audit read failed: %w", err)
	}
	have := make(map[extmesh.Coord]bool, len(st.Faults))
	for _, c := range st.Faults {
		have[c] = true
	}
	lost := 0
	for _, c := range acked {
		if !have[c] {
			lost++
			if lost <= 8 {
				fmt.Fprintf(out, "LOST acked write: fault (%d,%d)\n", c.X, c.Y)
			}
		}
	}
	cc := cluster.Counts()
	fmt.Fprintf(out, "kill-primary audit: mesh %s, primary now %s (epoch %d)\n", info.label(), cluster.PrimaryAddr(), cluster.Epoch())
	fmt.Fprintf(out, "cluster: %d writes, %d rediscoveries, %d stale rejects\n", cc.Writes, cc.Rediscoveries, cc.StaleRejects)
	fmt.Fprintf(out, "acked writes: %d, write errors: %d, lost: %d\n", len(acked), errs.Load(), lost)
	if lost > 0 {
		return fmt.Errorf("%d acknowledged writes lost across failover", lost)
	}
	if len(acked) == 0 {
		return fmt.Errorf("no acknowledged writes (%d errors)", errs.Load())
	}
	return nil
}

// meshInfo is the subset of GET /v1/mesh/{name} meshstress needs.
type meshInfo struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
}

func (m meshInfo) label() string {
	return fmt.Sprintf("%s(%dx%d)", m.Name, m.Width, m.Height)
}

func fetchMeshInfo(ctx context.Context, client *meshclient.Client, name string) (meshInfo, error) {
	var info meshInfo
	st, err := client.GetMesh(ctx, name)
	if err != nil {
		return info, fmt.Errorf("mesh %q: %w", name, err)
	}
	info = meshInfo{Name: st.Name, Width: st.Width, Height: st.Height}
	if info.Width <= 0 || info.Height <= 0 {
		return info, fmt.Errorf("mesh %q: implausible dimensions %dx%d", name, info.Width, info.Height)
	}
	return info, nil
}

// buildBodies pre-marshals a pool of request bodies so worker CPU goes
// to driving load, not JSON encoding — the client and server share
// cores on small machines. Returns the bodies, queries per request,
// and the endpoint path suffix.
func buildBodies(info meshInfo, endpoint string, batch int, model string, omitPaths bool, seed int64) ([][]byte, int, string, error) {
	const pool = 128
	rng := rand.New(rand.NewSource(seed))
	randCoord := func() extmesh.Coord {
		return extmesh.Coord{X: rng.Intn(info.Width), Y: rng.Intn(info.Height)}
	}

	type pair struct {
		Src extmesh.Coord `json:"src"`
		Dst extmesh.Coord `json:"dst"`
	}
	bodies := make([][]byte, 0, pool)
	marshal := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		bodies = append(bodies, b)
		return nil
	}

	switch endpoint {
	case "route", "has-minimal-path", "ensure", "safe":
	default:
		return nil, 0, "", fmt.Errorf("unknown endpoint %q", endpoint)
	}

	if batch == 1 {
		for i := 0; i < pool; i++ {
			if err := marshal(struct {
				pair
				Model    string `json:"model"`
				OmitPath bool   `json:"omit_path"`
			}{pair{randCoord(), randCoord()}, model, omitPaths}); err != nil {
				return nil, 0, "", err
			}
		}
		return bodies, 1, "/" + endpoint, nil
	}

	switch endpoint {
	case "route":
		for i := 0; i < pool; i++ {
			pairs := make([]pair, batch)
			for j := range pairs {
				pairs[j] = pair{randCoord(), randCoord()}
			}
			if err := marshal(struct {
				Pairs     []pair `json:"pairs"`
				Model     string `json:"model"`
				OmitPaths bool   `json:"omit_paths"`
			}{pairs, model, omitPaths}); err != nil {
				return nil, 0, "", err
			}
		}
		return bodies, batch, "/route/batch", nil
	case "has-minimal-path", "ensure":
		for i := 0; i < pool; i++ {
			dests := make([]extmesh.Coord, batch)
			for j := range dests {
				dests[j] = randCoord()
			}
			if err := marshal(struct {
				Src   extmesh.Coord   `json:"src"`
				Dests []extmesh.Coord `json:"dests"`
				Model string          `json:"model"`
			}{randCoord(), dests, model}); err != nil {
				return nil, 0, "", err
			}
		}
		return bodies, batch, "/" + endpoint + "/batch", nil
	}
	return nil, 0, "", fmt.Errorf("endpoint %q has no batch form; use -batch 1", endpoint)
}

// binWork is one pre-built binary request's arguments; exactly one
// group of fields is populated, matching the endpoint.
type binWork struct {
	endpoint  string
	q         meshclient.Query // batch == 1
	pairs     []meshclient.Pair
	src       extmesh.Coord
	dests     []extmesh.Coord
	model     string
	omitPaths bool
}

func (w *binWork) do(ctx context.Context, bc *meshclient.BinaryClient, mesh string) error {
	var err error
	switch w.endpoint {
	case "route":
		if w.pairs != nil {
			_, err = bc.RouteBatch(ctx, mesh, w.pairs, w.model, w.omitPaths)
		} else {
			_, err = bc.Route(ctx, mesh, w.q)
		}
	case "has-minimal-path":
		if w.dests != nil {
			_, err = bc.HasMinimalPathBatch(ctx, mesh, w.src, w.dests)
		} else {
			_, err = bc.HasMinimalPath(ctx, mesh, w.q)
		}
	case "ensure":
		if w.dests != nil {
			_, err = bc.EnsureBatch(ctx, mesh, w.src, w.dests, w.model)
		} else {
			_, err = bc.Ensure(ctx, mesh, w.q)
		}
	case "safe":
		_, err = bc.Safe(ctx, mesh, w.q)
	}
	return err
}

// buildBinaryWork pre-builds the binary query pool: the same endpoints
// and random-coordinate mix as buildBodies, as typed arguments instead
// of marshaled JSON.
func buildBinaryWork(info meshInfo, endpoint string, batch int, model string, omitPaths bool, seed int64) ([]binWork, int, error) {
	const pool = 128
	rng := rand.New(rand.NewSource(seed))
	randCoord := func() extmesh.Coord {
		return extmesh.Coord{X: rng.Intn(info.Width), Y: rng.Intn(info.Height)}
	}
	switch endpoint {
	case "route", "has-minimal-path", "ensure", "safe":
	default:
		return nil, 0, fmt.Errorf("unknown endpoint %q", endpoint)
	}
	work := make([]binWork, pool)
	if batch == 1 {
		for i := range work {
			work[i] = binWork{
				endpoint: endpoint,
				q:        meshclient.Query{Src: randCoord(), Dst: randCoord(), Model: model, OmitPath: omitPaths},
			}
		}
		return work, 1, nil
	}
	switch endpoint {
	case "route":
		for i := range work {
			pairs := make([]meshclient.Pair, batch)
			for j := range pairs {
				pairs[j] = meshclient.Pair{Src: randCoord(), Dst: randCoord()}
			}
			work[i] = binWork{endpoint: endpoint, pairs: pairs, model: model, omitPaths: omitPaths}
		}
	case "has-minimal-path", "ensure":
		for i := range work {
			dests := make([]extmesh.Coord, batch)
			for j := range dests {
				dests[j] = randCoord()
			}
			work[i] = binWork{endpoint: endpoint, src: randCoord(), dests: dests, model: model}
		}
	default:
		return nil, 0, fmt.Errorf("endpoint %q has no batch form; use -batch 1", endpoint)
	}
	return work, batch, nil
}

// pct returns the q-quantile of sorted latencies (nearest-rank).
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(time.Microsecond)
}
