package main

import (
	"bytes"
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/serve"
)

func newBackend(t *testing.T) *httptest.Server {
	ts, _ := newBackendServer(t)
	return ts
}

func newBackendServer(t *testing.T) (*httptest.Server, *serve.Server) {
	t.Helper()
	s := serve.New(serve.Options{})
	d, err := extmesh.NewDynamic(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []extmesh.Coord{{X: 5, Y: 5}, {X: 20, Y: 11}, {X: 13, Y: 28}} {
		if err := d.AddFault(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Meshes().Create("m", d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// startBinaryListener exposes s over the wire protocol on a loopback
// port and returns its address.
func startBinaryListener(t *testing.T, s *serve.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ctx, l, time.Second) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
	})
	return l.Addr().String()
}

// TestStressSmoke drives a short fixed-request run against an
// in-process server for each endpoint family and checks the report.
func TestStressSmoke(t *testing.T) {
	ts := newBackend(t)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"route-batch", []string{"-endpoint", "route", "-batch", "8"}},
		{"route-single", []string{"-endpoint", "route", "-batch", "1"}},
		{"existence-batch", []string{"-endpoint", "has-minimal-path", "-batch", "16"}},
		{"ensure-batch", []string{"-endpoint", "ensure", "-batch", "4"}},
		{"safe", []string{"-endpoint", "safe"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			args := append([]string{
				"-addr", ts.URL, "-mesh", "m", "-workers", "2", "-requests", "20",
			}, tc.args...)
			if err := run(context.Background(), args, &out); err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			report := out.String()
			for _, want := range []string{"requests: 20 ok, 0 errors", "attempts:", "throughput:", "latency: p50="} {
				if !strings.Contains(report, want) {
					t.Errorf("report missing %q:\n%s", want, report)
				}
			}
		})
	}
}

// TestStressBinarySmoke drives the same endpoint families over the
// binary wire protocol. Binary mode reports no attempts line (the
// client retries are per-connection), so the check list differs.
func TestStressBinarySmoke(t *testing.T) {
	ts, s := newBackendServer(t)
	binAddr := startBinaryListener(t, s)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"route-batch", []string{"-endpoint", "route", "-batch", "8"}},
		{"route-single", []string{"-endpoint", "route", "-batch", "1"}},
		{"existence-batch", []string{"-endpoint", "has-minimal-path", "-batch", "16"}},
		{"ensure-batch", []string{"-endpoint", "ensure", "-batch", "4"}},
		{"safe", []string{"-endpoint", "safe"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			args := append([]string{
				"-addr", ts.URL, "-proto", "binary", "-binary-addr", binAddr,
				"-mesh", "m", "-workers", "2", "-requests", "20",
			}, tc.args...)
			if err := run(context.Background(), args, &out); err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			report := out.String()
			for _, want := range []string{"binary", "requests: 20 ok, 0 errors", "throughput:", "latency: p50="} {
				if !strings.Contains(report, want) {
					t.Errorf("report missing %q:\n%s", want, report)
				}
			}
		})
	}
}

func TestStressUnknownMesh(t *testing.T) {
	ts := newBackend(t)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", ts.URL, "-mesh", "ghost", "-requests", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("err = %v, want unknown-mesh failure", err)
	}
}

func TestStressBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-workers", "0"}, &out); err == nil {
		t.Error("workers=0 accepted")
	}
	ts := newBackend(t)
	if err := run(context.Background(), []string{"-addr", ts.URL, "-mesh", "m", "-endpoint", "teleport", "-requests", "1"}, &out); err == nil {
		t.Error("unknown endpoint accepted")
	}
}
