// Command meshbench measures the query-plane hot paths — minimal-path
// existence, condition evaluation and routing, each in single-shot,
// cached and batch form — on a paper-scale mesh, plus the journal
// durability plane and the Monte Carlo reliability engine
// (trials/sec), and writes the results as machine-readable JSON
// (BENCH_routing.json) so the performance trajectory is tracked from
// run to run.
//
// Usage:
//
//	meshbench [-w 200] [-h 200] [-k "100,200"] [-dests 256] [-seed 7]
//	          [-benchtime 1s] [-out BENCH_routing.json]
//	          [-baseline BENCH_routing.json] [-tolerance 10]
//
// Every measurement reports ns/op, bytes/op and allocs/op from the
// standard testing.Benchmark machinery plus a derived queries/sec
// (batch operations are normalized by their batch size).
//
// With -baseline the fresh report is diffed against a previously
// written report: every measurement shared by both runs must keep its
// queries/sec within -tolerance percent of the baseline, or meshbench
// prints the regressing rows and exits nonzero. Mesh dimensions must
// match, measurements present on only one side are informational.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/analytic"
	"extmesh/internal/core"
	"extmesh/internal/fault"
	"extmesh/internal/journal"
	"extmesh/internal/mesh"
	"extmesh/internal/metrics"
	"extmesh/internal/reliability"
	"extmesh/internal/route"
	"extmesh/internal/serve"
	"extmesh/internal/wang"
	"extmesh/meshclient"
)

// Report is the top-level JSON document.
type Report struct {
	Tool        string     `json:"tool"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	MeshWidth   int        `json:"mesh_width"`
	MeshHeight  int        `json:"mesh_height"`
	Dests       int        `json:"dests_per_batch"`
	Seed        int64      `json:"seed"`
	Scenarios   []Scenario `json:"scenarios"`
	Journal     []Result   `json:"journal,omitempty"`
	Reliability []Result   `json:"reliability,omitempty"`
}

// Scenario is one fault count's measurements.
type Scenario struct {
	Faults  int      `json:"faults"`
	Results []Result `json:"results"`
}

// Result is one measured operation. P50Ns/P99Ns are per-request
// latency percentiles, reported only by the serve/* HTTP measurements
// where tail latency is the interesting number.
type Result struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	QueriesPerOp  int     `json:"queries_per_op"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Ns         float64 `json:"p50_ns,omitempty"`
	P99Ns         float64 `json:"p99_ns,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("meshbench", flag.ContinueOnError)
	var (
		width     = fs.Int("w", 200, "mesh width")
		height    = fs.Int("h", 200, "mesh height")
		faultsArg = fs.String("k", "100,200", "comma-separated fault counts (paper densities)")
		dests     = fs.Int("dests", 256, "destinations per batch operation")
		seed      = fs.Int64("seed", 7, "PRNG seed for fault placement and query sampling")
		benchtime = fs.Duration("benchtime", time.Second, "target time per measurement")
		outFile   = fs.String("out", "BENCH_routing.json", "output JSON path ('-' for stdout only)")
		baseline  = fs.String("baseline", "", "baseline report to diff against; exit nonzero on q/s regressions")
		tolerance = fs.Float64("tolerance", 10, "allowed queries/sec drop versus the baseline, in percent")
		doJournal = fs.Bool("journal", true, "measure the journal durability plane (too noisy at smoke benchtimes)")
		doRel     = fs.Bool("reliability", true, "measure the Monte Carlo survivability engine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Register the testing flags so -benchtime can be forwarded to
	// testing.Benchmark below.
	testing.Init()
	if *width < 2 || *height < 2 {
		return fmt.Errorf("mesh must be at least 2x2, got %dx%d", *width, *height)
	}
	if *dests < 1 {
		return fmt.Errorf("need at least one destination, got %d", *dests)
	}
	var counts []int
	for _, f := range strings.Split(*faultsArg, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 0 {
			return fmt.Errorf("bad fault count %q", f)
		}
		if k > *width**height-2 {
			return fmt.Errorf("fault count %d leaves no source/destination in a %dx%d mesh", k, *width, *height)
		}
		counts = append(counts, k)
	}

	rep := Report{
		Tool:       "meshbench",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MeshWidth:  *width,
		MeshHeight: *height,
		Dests:      *dests,
		Seed:       *seed,
	}
	for _, k := range counts {
		sc, err := measureScenario(out, *width, *height, k, *dests, *seed, *benchtime)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	if *doJournal {
		jr, err := measureJournal(out, *benchtime)
		if err != nil {
			return err
		}
		rep.Journal = jr
	}
	if *doRel {
		rr, err := measureReliability(out, *width, *height, *benchtime)
		if err != nil {
			return err
		}
		rep.Reliability = rr
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outFile != "-" {
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outFile)
	} else {
		out.Write(data)
	}
	if *baseline != "" {
		if err := diffBaseline(out, rep, *baseline, *tolerance); err != nil {
			return err
		}
	}
	return nil
}

// resultKey addresses one measurement across reports: the scenario's
// fault count (journal measurements use journalFaults) plus the
// result name.
type resultKey struct {
	faults int
	name   string
}

// journalFaults and reliabilityFaults are the pseudo fault counts the
// fault-independent journal and reliability measurements are filed
// under in a baseline diff.
const (
	journalFaults     = -1
	reliabilityFaults = -2
)

// indexResults flattens a report into a key->result map.
func indexResults(rep Report) map[resultKey]Result {
	idx := make(map[resultKey]Result)
	for _, sc := range rep.Scenarios {
		for _, r := range sc.Results {
			idx[resultKey{faults: sc.Faults, name: r.Name}] = r
		}
	}
	for _, r := range rep.Journal {
		idx[resultKey{faults: journalFaults, name: r.Name}] = r
	}
	for _, r := range rep.Reliability {
		idx[resultKey{faults: reliabilityFaults, name: r.Name}] = r
	}
	return idx
}

// diffBaseline compares the fresh report's queries/sec against a
// baseline report, measurement by measurement, and fails when any
// shared measurement regressed by more than tolerance percent.
// Measurements present on only one side are reported but never fail
// the diff, so adding or retiring a section doesn't break CI.
func diffBaseline(out io.Writer, rep Report, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.MeshWidth != rep.MeshWidth || base.MeshHeight != rep.MeshHeight {
		return fmt.Errorf("baseline %s measured a %dx%d mesh, this run a %dx%d mesh: not comparable",
			path, base.MeshWidth, base.MeshHeight, rep.MeshWidth, rep.MeshHeight)
	}
	baseIdx := indexResults(base)
	curIdx := indexResults(rep)

	keys := make([]resultKey, 0, len(curIdx))
	for k := range curIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].faults != keys[j].faults {
			return keys[i].faults < keys[j].faults
		}
		return keys[i].name < keys[j].name
	})

	fmt.Fprintf(out, "baseline diff vs %s (tolerance %.0f%%):\n", path, tolerance)
	var regressions []string
	for _, k := range keys {
		cur := curIdx[k]
		old, ok := baseIdx[k]
		if !ok {
			fmt.Fprintf(out, "  k=%-5d %-28s %14.0f q/s  (new measurement, no baseline)\n", k.faults, k.name, cur.QueriesPerSec)
			continue
		}
		if old.QueriesPerSec <= 0 || cur.QueriesPerSec <= 0 {
			continue
		}
		deltaPct := (cur.QueriesPerSec/old.QueriesPerSec - 1) * 100
		verdict := "ok"
		if deltaPct < -tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("k=%d %s: %.0f -> %.0f q/s (%.1f%%)",
				k.faults, k.name, old.QueriesPerSec, cur.QueriesPerSec, deltaPct))
		}
		fmt.Fprintf(out, "  k=%-5d %-28s %14.0f -> %12.0f q/s %+7.1f%%  %s\n",
			k.faults, k.name, old.QueriesPerSec, cur.QueriesPerSec, deltaPct, verdict)
	}
	for k, old := range baseIdx {
		if _, ok := curIdx[k]; !ok {
			fmt.Fprintf(out, "  k=%-5d %-28s %14.0f q/s  (baseline only, not measured this run)\n", k.faults, k.name, old.QueriesPerSec)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d measurement(s) regressed beyond %.0f%%:\n  %s",
			len(regressions), tolerance, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "no regressions beyond %.0f%%\n", tolerance)
	return nil
}

// measureScenario builds one fault configuration and runs every
// measurement against it.
func measureScenario(out io.Writer, w, h, k, nDests int, seed int64, benchtime time.Duration) (Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	m := mesh.Mesh{Width: w, Height: h}
	var faults []extmesh.Coord
	seen := make(map[extmesh.Coord]bool)
	for len(faults) < k {
		c := extmesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		if !seen[c] {
			seen[c] = true
			faults = append(faults, c)
		}
	}
	net, err := extmesh.New(w, h, faults)
	if err != nil {
		return Scenario{}, err
	}
	faultGrid := make([]bool, m.Size())
	for _, f := range faults {
		faultGrid[m.Index(f)] = true
	}

	// Root the queries at the center, or the first non-faulty node if
	// the center happens to be faulty (k <= w*h-2 guarantees one).
	src := m.Center()
	for i := 0; net.IsFaulty(src); i++ {
		src = m.CoordOf(i)
	}
	// Sample non-faulty destinations across the whole mesh.
	destList := make([]extmesh.Coord, 0, nDests)
	for len(destList) < nDests {
		c := extmesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		if !net.IsFaulty(c) && c != src {
			destList = append(destList, c)
		}
	}
	pairs := make([]extmesh.Pair, len(destList))
	for i, d := range destList {
		pairs[i] = extmesh.Pair{Src: src, Dst: d}
	}
	st := extmesh.DefaultStrategy()

	fmt.Fprintf(out, "mesh %dx%d, %d faults, %d dests:\n", w, h, k, len(destList))
	sc := Scenario{Faults: k}
	record := func(name string, queriesPerOp int, fn func(b *testing.B)) {
		old := flag.Lookup("test.benchtime")
		if old != nil {
			old.Value.Set(benchtime.String())
		}
		r := testing.Benchmark(fn)
		res := Result{
			Name:         name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			QueriesPerOp: queriesPerOp,
		}
		if res.NsPerOp > 0 {
			res.QueriesPerSec = float64(queriesPerOp) * 1e9 / res.NsPerOp
		}
		sc.Results = append(sc.Results, res)
		fmt.Fprintf(out, "  %-28s %12.1f ns/op %8d B/op %6d allocs/op %14.0f q/s\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.QueriesPerSec)
	}

	// Scenario construction: the full per-configuration pipeline — fault
	// scenario, block and MCC labeling, safety levels for both models,
	// and the reachability cone — built from scratch versus rebuilt into
	// reused arena buffers, as internal/sim's workers do.
	record("scenario_setup/fresh", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fsc, err := fault.NewScenario(m, faults)
			if err != nil {
				b.Fatal(err)
			}
			bs := fault.BuildBlocks(fsc)
			ms := fault.BuildMCC(fsc, fault.TypeOne)
			if _, err := core.NewModel(m, bs.BlockedGrid()); err != nil {
				b.Fatal(err)
			}
			if _, err := core.NewModel(m, ms.BlockedGrid()); err != nil {
				b.Fatal(err)
			}
			_ = wang.ReachFrom(m, src, faultGrid)
		}
	})
	record("scenario_setup/arena", 1, func(b *testing.B) {
		b.ReportAllocs()
		var (
			asc                *fault.Scenario
			bs                 *fault.BlockSet
			ms                 *fault.MCCSet
			blockGrid, mccGrid []bool
			blockMd, mccMd     core.Model
			reach              *wang.Reach
		)
		for i := 0; i < b.N; i++ {
			if asc == nil {
				var err error
				if asc, err = fault.NewScenario(m, faults); err != nil {
					b.Fatal(err)
				}
			} else if err := asc.Reset(faults); err != nil {
				b.Fatal(err)
			}
			bs = fault.BuildBlocksInto(bs, asc)
			ms = fault.BuildMCCInto(ms, asc, fault.TypeOne)
			blockGrid = bs.BlockedGridInto(blockGrid)
			mccGrid = ms.BlockedGridInto(mccGrid)
			if err := blockMd.Reset(m, blockGrid); err != nil {
				b.Fatal(err)
			}
			if err := mccMd.Reset(m, mccGrid); err != nil {
				b.Fatal(err)
			}
			reach = wang.ReachFromInto(reach, m, src, faultGrid)
		}
		_ = reach
	})

	// Condition evaluation on a prepared model: the Extension-2 segment
	// scan is the strategy hot loop and must stay allocation-free.
	condSc, err := fault.NewScenario(m, faults)
	if err != nil {
		return Scenario{}, err
	}
	md, err := core.NewModel(m, fault.BuildBlocks(condSc).BlockedGrid())
	if err != nil {
		return Scenario{}, err
	}
	record("condition_eval/extension2", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			md.Extension2(src, destList[i%len(destList)], core.StrategySegSize)
		}
	})
	st1 := core.NewStrategy1()
	record("condition_eval/strategy1", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			md.Evaluate(src, destList[i%len(destList)], st1)
		}
	})

	// Existence: the uncached rectangle DP per query, then the cached
	// per-source sweep, then the batched form.
	record("has_minimal_path/single", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = wang.MinimalPathExists(m, src, destList[i%len(destList)], faultGrid)
		}
	})
	net.HasMinimalPath(src, destList[0]) // pay the sweep before timing
	record("has_minimal_path/cached", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = net.HasMinimalPath(src, destList[i%len(destList)])
		}
	})
	var hmBuf []bool
	record("has_minimal_path/batch", len(destList), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hmBuf = net.HasMinimalPathAllInto(hmBuf, src, destList)
		}
	})

	// The reachability kernel itself: the retired per-cell bool sweep
	// (kept here as the reference) against the bit-parallel sweep that
	// replaced it, and the []bool entry point that pays the conversion
	// on every call.
	record("reach_bitset/bool_sweep", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = boolSweepReach(m, src, faultGrid)
		}
	})
	faultBits := new(mesh.Bits).FromBools(m, faultGrid)
	var rbits *wang.Reach
	record("reach_bitset/bitset", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rbits = wang.ReachFromBitsInto(rbits, m, src, faultBits)
		}
	})
	var rconv *wang.Reach
	record("reach_bitset/from_bools", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rconv = wang.ReachFromInto(rconv, m, src, faultGrid)
		}
	})

	// Condition evaluation: per destination, then the worker-pool batch.
	record("ensure/single", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = net.Ensure(src, destList[i%len(destList)], extmesh.Blocks, st)
		}
	})
	record("ensure/batch", len(destList), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = net.EnsureAll(src, destList, extmesh.Blocks, st)
		}
	})

	// Routing: Wu single vs batch, oracle uncached vs cached reach.
	record("route/single", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = net.Route(src, destList[i%len(destList)], extmesh.Blocks)
		}
	})
	record("route/batch", len(pairs), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = net.RouteMany(pairs, extmesh.Blocks)
		}
	})
	record("oracle_route/uncached", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = route.Oracle(m, faultGrid, src, destList[i%len(destList)])
		}
	})
	record("oracle_route/cached", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = net.OracleRoute(src, destList[i%len(destList)])
		}
	})

	// The route kernel in isolation: per-hop decision, append-style
	// single route into a reused buffer, the arena batch, the
	// word-stepping oracle, and the cost of building one orientation
	// view from scratch (contour walks + flat boundary index pack).
	kernelGrid := fault.BuildBlocks(condSc).BlockedGrid()
	kr := route.NewRouter(m, kernelGrid)
	kr.NextHop(src, destList[0]) // build the view before timing
	record("route_kernel/next_hop", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = kr.NextHop(src, destList[i%len(destList)])
		}
	})
	var kbuf []mesh.Coord
	record("route_kernel/route_into", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kbuf, _ = kr.RouteInto(kbuf[:0], src, destList[i%len(destList)])
		}
	})
	var arena extmesh.RouteArena
	net.RouteManyInto(&arena, pairs, extmesh.Blocks) // warm slabs and views
	record("route_kernel/batch_into", len(pairs), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = net.RouteManyInto(&arena, pairs, extmesh.Blocks)
		}
	})
	var obuf extmesh.Path
	net.OracleRoute(src, destList[0]) // pay the first reach sweep up front
	record("route_kernel/oracle_into", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			obuf, _ = net.OracleRouteInto(obuf[:0], src, destList[i%len(destList)])
		}
	})
	record("route_kernel/view_build", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := route.NewRouter(m, kernelGrid)
			_, _ = r.NextHop(src, mesh.Coord{X: m.Width - 1, Y: m.Height - 1})
		}
	})

	// The served query plane: the same operations through meshserved's
	// HTTP surface, measuring what a network client actually sees —
	// JSON decode, snapshot lookup, query, JSON encode — with
	// per-request latency percentiles.
	serveResults, err := measureServe(out, w, h, faults, src, destList, pairs, benchtime)
	if err != nil {
		return Scenario{}, err
	}
	sc.Results = append(sc.Results, serveResults...)
	return sc, nil
}

// boolSweepReach is the pre-bitset reachability algorithm — one bool
// per cell, four quadrant cones, scalar recurrence — retained here as
// the reference the reach_bitset/* measurements are judged against.
func boolSweepReach(m mesh.Mesh, s mesh.Coord, blocked []bool) []bool {
	ok := make([]bool, m.Size())
	for _, sx := range [2]int{1, -1} {
		for _, sy := range [2]int{1, -1} {
			for y := s.Y; y >= 0 && y < m.Height; y += sy {
				for x := s.X; x >= 0 && x < m.Width; x += sx {
					i := y*m.Width + x
					if blocked[i] {
						continue
					}
					if x == s.X && y == s.Y {
						ok[i] = true
						continue
					}
					reach := false
					if x != s.X {
						reach = ok[y*m.Width+(x-sx)]
					}
					if !reach && y != s.Y {
						reach = ok[(y-sy)*m.Width+x]
					}
					ok[i] = reach
				}
			}
		}
	}
	return ok
}

// measureServe stands up an in-process meshserved handler over the
// scenario's mesh and times HTTP round trips against it.
func measureServe(out io.Writer, w, h int, faults []extmesh.Coord, src extmesh.Coord, destList []extmesh.Coord, pairs []extmesh.Pair, benchtime time.Duration) ([]Result, error) {
	d, err := extmesh.NewDynamic(w, h)
	if err != nil {
		return nil, err
	}
	for _, c := range faults {
		if err := d.AddFault(c); err != nil {
			return nil, err
		}
	}
	srv := serve.New(serve.Options{Metrics: metrics.NewRegistry()})
	if err := srv.Meshes().Create("bench", d); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	// Warm the snapshot and reach cache so the measurements see the
	// steady state, mirroring the library-level cached numbers.
	warm, _ := json.Marshal(map[string]any{"src": src, "dst": destList[0]})
	if resp, err := client.Post(ts.URL+"/v1/mesh/bench/route", "application/json", strings.NewReader(string(warm))); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	type pairJSON struct {
		Src extmesh.Coord `json:"src"`
		Dst extmesh.Coord `json:"dst"`
	}
	singleBodies := make([][]byte, len(destList))
	for i, dst := range destList {
		b, err := json.Marshal(struct {
			pairJSON
			OmitPath bool `json:"omit_path"`
		}{pairJSON{src, dst}, true})
		if err != nil {
			return nil, err
		}
		singleBodies[i] = b
	}
	batchPairs := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		batchPairs[i] = pairJSON{p.Src, p.Dst}
	}
	routeBatchBody, err := json.Marshal(struct {
		Pairs     []pairJSON `json:"pairs"`
		OmitPaths bool       `json:"omit_paths"`
	}{batchPairs, true})
	if err != nil {
		return nil, err
	}
	fanBody, err := json.Marshal(struct {
		Src   extmesh.Coord   `json:"src"`
		Dests []extmesh.Coord `json:"dests"`
	}{src, destList})
	if err != nil {
		return nil, err
	}

	var results []Result
	measure := func(name, path string, bodies [][]byte, queriesPerOp int) error {
		url := ts.URL + "/v1/mesh/bench" + path
		lats := make([]time.Duration, 0, 8192)
		deadline := time.Now().Add(benchtime)
		for i := 0; time.Now().Before(deadline); i++ {
			body := bodies[i%len(bodies)]
			t0 := time.Now()
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// 422 is the served "no minimal path" verdict — a legitimate
			// answer at high fault densities, measured like any other.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
				return fmt.Errorf("%s: status %s", path, resp.Status)
			}
			lats = append(lats, time.Since(t0))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var total time.Duration
		for _, l := range lats {
			total += l
		}
		res := Result{
			Name:         name,
			NsPerOp:      float64(total.Nanoseconds()) / float64(len(lats)),
			QueriesPerOp: queriesPerOp,
			P50Ns:        float64(lats[len(lats)/2].Nanoseconds()),
			P99Ns:        float64(lats[len(lats)*99/100].Nanoseconds()),
		}
		if res.NsPerOp > 0 {
			res.QueriesPerSec = float64(queriesPerOp) * 1e9 / res.NsPerOp
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-28s %12.1f ns/op  p50=%.0fns p99=%.0fns %21.0f q/s\n",
			name, res.NsPerOp, res.P50Ns, res.P99Ns, res.QueriesPerSec)
		return nil
	}

	if err := measure("serve/route_single", "/route", singleBodies, 1); err != nil {
		return nil, err
	}
	if err := measure("serve/route_batch", "/route/batch", [][]byte{routeBatchBody}, len(batchPairs)); err != nil {
		return nil, err
	}
	if err := measure("serve/has_minimal_path_batch", "/has-minimal-path/batch", [][]byte{fanBody}, len(destList)); err != nil {
		return nil, err
	}

	// The same query plane over the binary wire protocol: one
	// persistent connection, length-prefixed frames, no HTTP or JSON.
	// Columns line up with the serve/* rows above so the per-request
	// transport tax is read directly.
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	bctx, bcancel := context.WithCancel(context.Background())
	bdone := make(chan error, 1)
	go func() { bdone <- srv.ServeBinary(bctx, bl, time.Second) }()
	defer func() {
		bcancel()
		<-bdone
	}()
	bc, err := meshclient.NewBinary(meshclient.BinaryOptions{Addr: bl.Addr().String()})
	if err != nil {
		return nil, err
	}
	defer bc.Close()
	ctx := context.Background()
	clientPairs := make([]meshclient.Pair, len(pairs))
	for i, p := range pairs {
		clientPairs[i] = meshclient.Pair{Src: p.Src, Dst: p.Dst}
	}
	measureCall := func(name string, queriesPerOp int, call func(i int) error) error {
		lats := make([]time.Duration, 0, 8192)
		deadline := time.Now().Add(benchtime)
		for i := 0; time.Now().Before(deadline); i++ {
			t0 := time.Now()
			if err := call(i); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			lats = append(lats, time.Since(t0))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var total time.Duration
		for _, l := range lats {
			total += l
		}
		res := Result{
			Name:         name,
			NsPerOp:      float64(total.Nanoseconds()) / float64(len(lats)),
			QueriesPerOp: queriesPerOp,
			P50Ns:        float64(lats[len(lats)/2].Nanoseconds()),
			P99Ns:        float64(lats[len(lats)*99/100].Nanoseconds()),
		}
		if res.NsPerOp > 0 {
			res.QueriesPerSec = float64(queriesPerOp) * 1e9 / res.NsPerOp
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-28s %12.1f ns/op  p50=%.0fns p99=%.0fns %21.0f q/s\n",
			name, res.NsPerOp, res.P50Ns, res.P99Ns, res.QueriesPerSec)
		return nil
	}
	isNoPath := func(err error) bool {
		var apiErr *meshclient.APIError
		return errors.As(err, &apiErr) && apiErr.Status == http.StatusUnprocessableEntity
	}
	if err := measureCall("serve_binary/route_single", 1, func(i int) error {
		_, err := bc.Route(ctx, "bench", meshclient.Query{Src: src, Dst: destList[i%len(destList)], OmitPath: true})
		if err != nil && !isNoPath(err) {
			return err
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measureCall("serve_binary/route_batch", len(clientPairs), func(int) error {
		_, err := bc.RouteBatch(ctx, "bench", clientPairs, "blocks", true)
		return err
	}); err != nil {
		return nil, err
	}
	if err := measureCall("serve_binary/has_minimal_path_batch", len(destList), func(int) error {
		_, err := bc.HasMinimalPathBatch(ctx, "bench", src, destList)
		return err
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// measureReliability times the Monte Carlo survivability engine: raw
// trial throughput (sample faults, rebuild blocks and reachability in
// the arena, classify pairs) on the fixed 64x64 reference mesh and on
// this run's full mesh, plus the Theorem 2 closed form the sweeps are
// cross-checked against. QueriesPerSec here is trials/sec.
func measureReliability(out io.Writer, w, h int, benchtime time.Duration) ([]Result, error) {
	fmt.Fprintf(out, "reliability:\n")
	var results []Result
	record := func(name string, queriesPerOp int, fn func(b *testing.B)) {
		if old := flag.Lookup("test.benchtime"); old != nil {
			old.Value.Set(benchtime.String())
		}
		r := testing.Benchmark(fn)
		res := Result{
			Name:         name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			QueriesPerOp: queriesPerOp,
		}
		if res.NsPerOp > 0 {
			res.QueriesPerSec = float64(queriesPerOp) * 1e9 / res.NsPerOp
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-28s %12.1f ns/op %8d B/op %6d allocs/op %14.0f trials/s\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.QueriesPerSec)
	}

	sweepBench := func(sw, sh, k, trials int) func(b *testing.B) {
		cfg := reliability.Config{
			Width: sw, Height: sh,
			Points:        []reliability.Point{{K: k}},
			Trials:        trials,
			PairsPerTrial: 8,
			Seed:          7,
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := reliability.Sweep(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// 64x64 at the paper's 1% density: the fixed reference point that
	// stays comparable when -w/-h change.
	record("reliability/sweep_64x64", 16, sweepBench(64, 64, 40, 16))
	// The full mesh of this run (200x200 by default), at the same
	// density, fewer trials per op to keep the measurement bounded.
	kFull := w * h / 100
	if kFull < 2 {
		kFull = 2
	}
	if kFull > w*h-2 {
		kFull = w*h - 2
	}
	record("reliability/sweep_full", 4, sweepBench(w, h, kFull, 4))
	// The Theorem 2 closed form the Monte Carlo estimates are checked
	// against — pure arithmetic, but on the sweep result path.
	record("reliability/analytic_thm2", 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = analytic.ExpectedAffected(h, kFull)
		}
	})
	return results, nil
}

// measureJournal times the durability plane: append throughput with
// and without per-record fsync, and cold replay of a populated
// journal. These bound what a journaled meshserved can acknowledge.
func measureJournal(out io.Writer, benchtime time.Duration) ([]Result, error) {
	fmt.Fprintf(out, "journal:\n")
	var results []Result
	record := func(name string, queriesPerOp int, fn func(b *testing.B)) {
		if old := flag.Lookup("test.benchtime"); old != nil {
			old.Value.Set(benchtime.String())
		}
		r := testing.Benchmark(fn)
		res := Result{
			Name:         name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			QueriesPerOp: queriesPerOp,
		}
		if res.NsPerOp > 0 {
			res.QueriesPerSec = float64(queriesPerOp) * 1e9 / res.NsPerOp
		}
		results = append(results, res)
		fmt.Fprintf(out, "  %-28s %12.1f ns/op %8d B/op %6d allocs/op %14.0f q/s\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.QueriesPerSec)
	}

	rec := journal.Record{
		Op:   journal.OpApply,
		Name: "bench",
		Fail: []extmesh.Coord{{X: 3, Y: 4}, {X: 5, Y: 6}},
	}
	appendBench := func(policy journal.SyncPolicy) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			dir, err := os.MkdirTemp("", "meshbench-journal-*")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			store, err := journal.Open(dir, journal.Options{
				Policy:       policy,
				CompactEvery: 1 << 30, // appends only; no compaction mid-measure
				Metrics:      metrics.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			if _, err := store.Recover(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	record("journal/append_syncnever", 1, appendBench(journal.SyncNever))
	record("journal/append_syncalways", 1, appendBench(journal.SyncAlways))

	// Replay: a journal of replayRecords apply records, recovered from
	// cold per iteration (open + frame-decode + close).
	const replayRecords = 4096
	dir, err := os.MkdirTemp("", "meshbench-replay-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	seedStore, err := journal.Open(dir, journal.Options{
		Policy:       journal.SyncNever,
		CompactEvery: 1 << 30,
		Metrics:      metrics.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	if _, err := seedStore.Recover(); err != nil {
		return nil, err
	}
	for i := 0; i < replayRecords; i++ {
		if _, err := seedStore.Append(rec); err != nil {
			return nil, err
		}
	}
	if err := seedStore.Close(); err != nil {
		return nil, err
	}
	record("journal/replay", replayRecords, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store, err := journal.Open(dir, journal.Options{Metrics: metrics.NewRegistry()})
			if err != nil {
				b.Fatal(err)
			}
			recovery, err := store.Recover()
			if err != nil {
				b.Fatal(err)
			}
			if len(recovery.Records) != replayRecords {
				b.Fatalf("replayed %d records, want %d", len(recovery.Records), replayRecords)
			}
			store.Close()
		}
	})
	return results, nil
}
