package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunProducesValidJSON runs the tool on a small mesh with a short
// benchtime and checks the emitted document parses and covers every
// measured operation.
func TestRunProducesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-w", "24", "-h", "24", "-k", "6,12", "-dests", "16",
		"-benchtime", "2ms", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if rep.Tool != "meshbench" || rep.MeshWidth != 24 || rep.MeshHeight != 24 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Scenarios) != 2 || rep.Scenarios[0].Faults != 6 || rep.Scenarios[1].Faults != 12 {
		t.Fatalf("scenarios wrong: %+v", rep.Scenarios)
	}
	want := map[string]bool{
		"scenario_setup/fresh":                false,
		"scenario_setup/arena":                false,
		"condition_eval/extension2":           false,
		"condition_eval/strategy1":            false,
		"has_minimal_path/single":             false,
		"has_minimal_path/cached":             false,
		"has_minimal_path/batch":              false,
		"reach_bitset/bool_sweep":             false,
		"reach_bitset/bitset":                 false,
		"reach_bitset/from_bools":             false,
		"ensure/single":                       false,
		"ensure/batch":                        false,
		"route/single":                        false,
		"route/batch":                         false,
		"oracle_route/uncached":               false,
		"oracle_route/cached":                 false,
		"serve/route_single":                  false,
		"serve/route_batch":                   false,
		"serve/has_minimal_path_batch":        false,
		"serve_binary/route_single":           false,
		"serve_binary/route_batch":            false,
		"serve_binary/has_minimal_path_batch": false,
	}
	for _, sc := range rep.Scenarios {
		for name := range want {
			want[name] = false
		}
		for _, r := range sc.Results {
			if _, ok := want[r.Name]; !ok {
				t.Fatalf("unexpected result %q", r.Name)
			}
			want[r.Name] = true
			if r.NsPerOp <= 0 || r.QueriesPerOp <= 0 || r.QueriesPerSec <= 0 {
				t.Fatalf("%s: non-positive measurement %+v", r.Name, r)
			}
			if r.AllocsPerOp < 0 || r.BytesPerOp < 0 {
				t.Fatalf("%s: negative alloc stats %+v", r.Name, r)
			}
		}
		for name, seen := range want {
			if !seen {
				t.Fatalf("faults=%d: missing result %q", sc.Faults, name)
			}
		}
	}
}

// TestRunRejectsBadFaultList pins the flag validation.
func TestRunRejectsBadFaultList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "10,frog"}, &buf); err == nil {
		t.Fatal("expected error for non-numeric fault count")
	}
	if err := run([]string{"-k", "-3"}, &buf); err == nil {
		t.Fatal("expected error for negative fault count")
	}
}
