package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunProducesValidJSON runs the tool on a small mesh with a short
// benchtime and checks the emitted document parses and covers every
// measured operation.
func TestRunProducesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-w", "24", "-h", "24", "-k", "6,12", "-dests", "16",
		"-benchtime", "2ms", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if rep.Tool != "meshbench" || rep.MeshWidth != 24 || rep.MeshHeight != 24 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Scenarios) != 2 || rep.Scenarios[0].Faults != 6 || rep.Scenarios[1].Faults != 12 {
		t.Fatalf("scenarios wrong: %+v", rep.Scenarios)
	}
	want := map[string]bool{
		"scenario_setup/fresh":                false,
		"scenario_setup/arena":                false,
		"condition_eval/extension2":           false,
		"condition_eval/strategy1":            false,
		"has_minimal_path/single":             false,
		"has_minimal_path/cached":             false,
		"has_minimal_path/batch":              false,
		"reach_bitset/bool_sweep":             false,
		"reach_bitset/bitset":                 false,
		"reach_bitset/from_bools":             false,
		"ensure/single":                       false,
		"ensure/batch":                        false,
		"route/single":                        false,
		"route/batch":                         false,
		"oracle_route/uncached":               false,
		"oracle_route/cached":                 false,
		"serve/route_single":                  false,
		"serve/route_batch":                   false,
		"serve/has_minimal_path_batch":        false,
		"serve_binary/route_single":           false,
		"serve_binary/route_batch":            false,
		"serve_binary/has_minimal_path_batch": false,
		"route_kernel/next_hop":               false,
		"route_kernel/route_into":             false,
		"route_kernel/batch_into":             false,
		"route_kernel/oracle_into":            false,
		"route_kernel/view_build":             false,
	}
	for _, sc := range rep.Scenarios {
		for name := range want {
			want[name] = false
		}
		for _, r := range sc.Results {
			if _, ok := want[r.Name]; !ok {
				t.Fatalf("unexpected result %q", r.Name)
			}
			want[r.Name] = true
			if r.NsPerOp <= 0 || r.QueriesPerOp <= 0 || r.QueriesPerSec <= 0 {
				t.Fatalf("%s: non-positive measurement %+v", r.Name, r)
			}
			if r.AllocsPerOp < 0 || r.BytesPerOp < 0 {
				t.Fatalf("%s: negative alloc stats %+v", r.Name, r)
			}
		}
		for name, seen := range want {
			if !seen {
				t.Fatalf("faults=%d: missing result %q", sc.Faults, name)
			}
		}
	}

	wantRel := map[string]bool{
		"reliability/sweep_64x64":   false,
		"reliability/sweep_full":    false,
		"reliability/analytic_thm2": false,
	}
	for _, r := range rep.Reliability {
		if _, ok := wantRel[r.Name]; !ok {
			t.Fatalf("unexpected reliability result %q", r.Name)
		}
		wantRel[r.Name] = true
		if r.NsPerOp <= 0 || r.QueriesPerOp <= 0 || r.QueriesPerSec <= 0 {
			t.Fatalf("%s: non-positive measurement %+v", r.Name, r)
		}
	}
	for name, seen := range wantRel {
		if !seen {
			t.Fatalf("missing reliability result %q", name)
		}
	}
}

// TestRunRejectsBadFaultList pins the flag validation.
func TestRunRejectsBadFaultList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-k", "10,frog"}, &buf); err == nil {
		t.Fatal("expected error for non-numeric fault count")
	}
	if err := run([]string{"-k", "-3"}, &buf); err == nil {
		t.Fatal("expected error for negative fault count")
	}
}

func diffReport(mw, mh int, qps map[string]float64) Report {
	rep := Report{MeshWidth: mw, MeshHeight: mh}
	sc := Scenario{Faults: 10}
	for name, q := range qps {
		sc.Results = append(sc.Results, Result{Name: name, QueriesPerSec: q})
	}
	rep.Scenarios = []Scenario{sc}
	return rep
}

// TestDiffBaseline pins the regression gate: within tolerance passes,
// beyond tolerance fails and names the row, one-sided measurements are
// informational, and mismatched mesh dimensions refuse to compare.
func TestDiffBaseline(t *testing.T) {
	dir := t.TempDir()
	writeBase := func(name string, rep Report) string {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := writeBase("base.json", diffReport(40, 40, map[string]float64{
		"route/batch":  100000,
		"route/single": 5000,
		"gone/only":    777,
	}))

	var buf bytes.Buffer
	cur := diffReport(40, 40, map[string]float64{
		"route/batch":  95000, // -5%: inside a 10% tolerance
		"route/single": 6000,
		"new/only":     123,
	})
	if err := diffBaseline(&buf, cur, base, 10); err != nil {
		t.Fatalf("within-tolerance diff failed: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"new/only", "gone/only", "no regressions"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("diff output missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	cur = diffReport(40, 40, map[string]float64{
		"route/batch":  50000, // -50%: regression
		"route/single": 5000,
	})
	err := diffBaseline(&buf, cur, base, 10)
	if err == nil {
		t.Fatalf("50%% drop passed a 10%% tolerance:\n%s", buf.String())
	}
	if !bytes.Contains([]byte(err.Error()), []byte("route/batch")) {
		t.Fatalf("regression error does not name the row: %v", err)
	}

	buf.Reset()
	if err := diffBaseline(&buf, diffReport(30, 30, nil), base, 10); err == nil {
		t.Fatal("mismatched mesh dimensions compared anyway")
	}
	if err := diffBaseline(&buf, cur, filepath.Join(dir, "missing.json"), 10); err == nil {
		t.Fatal("missing baseline file compared anyway")
	}
}

// TestRunSelfBaseline runs the tool twice back to back on a small mesh
// and diffs the second run against the first with a generous tolerance:
// the end-to-end -baseline plumbing must not flag identical workloads.
func TestRunSelfBaseline(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.json")
	var buf bytes.Buffer
	args := []string{"-w", "24", "-h", "24", "-k", "8", "-dests", "16", "-benchtime", "2ms"}
	if err := run(append(args, "-out", first), &buf); err != nil {
		t.Fatalf("first run: %v", err)
	}
	buf.Reset()
	err := run(append(args, "-out", filepath.Join(dir, "second.json"),
		"-baseline", first, "-tolerance", "95"), &buf)
	if err != nil {
		t.Fatalf("self-diff flagged a regression: %v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("baseline diff")) {
		t.Fatalf("diff output missing:\n%s", buf.String())
	}
}
