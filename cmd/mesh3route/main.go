// Command mesh3route exercises the 3-D extension (the paper's stated
// future work): it builds a faulty 3-D mesh, evaluates the axis-clear
// sufficient safe condition and its neighbor extension at the source,
// and routes a packet with the full-information oracle.
//
// Usage:
//
//	mesh3route -d 16 -k 40 -src 0,0,0 -dst 14,13,12 [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"extmesh/internal/mesh3"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mesh3route:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mesh3route", flag.ContinueOnError)
	var (
		side    = fs.Int("d", 16, "mesh side length (d x d x d)")
		k       = fs.Int("k", 40, "number of random faults")
		seed    = fs.Int64("seed", 1, "PRNG seed")
		srcFlag = fs.String("src", "0,0,0", "source node x,y,z")
		dstFlag = fs.String("dst", "", "destination node x,y,z (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dstFlag == "" {
		return fmt.Errorf("-dst is required")
	}
	src, err := parseCoord3(*srcFlag)
	if err != nil {
		return err
	}
	dst, err := parseCoord3(*dstFlag)
	if err != nil {
		return err
	}

	m, err := mesh3.New(*side, *side, *side)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	faults, err := mesh3.RandomFaults(m, *k, rng, func(c mesh3.Coord) bool {
		return c == src || c == dst
	})
	if err != nil {
		return err
	}
	sc, err := mesh3.NewScenario(m, faults)
	if err != nil {
		return err
	}
	bs := mesh3.BuildBlocks(sc)
	md, err := mesh3.NewModel(m, bs.BlockedGrid())
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "mesh %v, %d faults, %d fault regions, %d healthy nodes deactivated\n",
		m, len(faults), len(bs.Boxes), bs.DisabledCount())
	fmt.Fprintf(out, "source %v safety level: %v\n", src, md.Levels.At(src))
	fmt.Fprintf(out, "destination %v, distance %d\n\n", dst, mesh3.Distance(src, dst))
	region := mesh3.Box{MinX: 0, MinY: 0, MinZ: 0, MaxX: *side - 1, MaxY: *side - 1, MaxZ: *side - 1}
	pivots := mesh3.Pivots3(region, 2)
	fmt.Fprintf(out, "axis-clear safe condition: %v\n", md.Safe(src, dst))
	fmt.Fprintf(out, "neighbor extension (1):    %v\n", md.Extension1(src, dst))
	fmt.Fprintf(out, "on-axis extension (2):     %v\n", md.Extension2(src, dst))
	fmt.Fprintf(out, "pivot extension (3):       %v\n", md.Extension3(src, dst, pivots))
	exists := mesh3.MinimalPathExists(m, src, dst, md.Blocked)
	fmt.Fprintf(out, "minimal path exists:       %v\n", exists)

	if path, err := mesh3.Oracle(m, md.Blocked, src, dst); err == nil {
		fmt.Fprintf(out, "\noracle route: %d hops (minimal: %v)\n", path.Hops(), path.Minimal())
	} else {
		fmt.Fprintf(out, "\noracle route: %v\n", err)
	}
	return nil
}

func parseCoord3(s string) (mesh3.Coord, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 3 {
		return mesh3.Coord{}, fmt.Errorf("coordinate %q must be x,y,z", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return mesh3.Coord{}, fmt.Errorf("coordinate %q: %v", s, err)
		}
		vals[i] = v
	}
	return mesh3.Coord{X: vals[0], Y: vals[1], Z: vals[2]}, nil
}
