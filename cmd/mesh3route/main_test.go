package main

import (
	"strings"
	"testing"
)

func TestRun3D(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-d", "10", "-k", "20", "-src", "0,0,0", "-dst", "9,9,9"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"mesh 10x10x10", "axis-clear safe condition:", "on-axis extension (2):", "pivot extension (3):", "minimal path exists:", "oracle route:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRun3DErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-d", "10"}, &sb); err == nil {
		t.Error("missing -dst should fail")
	}
	if err := run([]string{"-dst", "bad"}, &sb); err == nil {
		t.Error("bad destination should fail")
	}
	if err := run([]string{"-dst", "1,2"}, &sb); err == nil {
		t.Error("2-component destination should fail")
	}
	if err := run([]string{"-d", "0", "-dst", "1,1,1"}, &sb); err == nil {
		t.Error("bad dimension should fail")
	}
	if err := run([]string{"-d", "4", "-k", "1000", "-dst", "1,1,1"}, &sb); err == nil {
		t.Error("too many faults should fail")
	}
}
