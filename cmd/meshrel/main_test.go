package main

import (
	"encoding/json"
	"strings"
	"testing"

	"extmesh/internal/reliability"
)

func TestRunTable(t *testing.T) {
	var sb strings.Builder
	code, err := run([]string{"-w", "24", "-h", "24", "-k", "4,8", "-p", "0.02",
		"-trials", "32", "-pairs", "4"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	out := sb.String()
	for _, want := range []string{"survivability sweep, 24x24 mesh", "k=4", "k=8", "p=0.02", "thm2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	code, err := run([]string{"-w", "16", "-h", "16", "-k", "3", "-trials", "16",
		"-pairs", "4", "-json"}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	var rep reliability.Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not a Report: %v\n%s", err, sb.String())
	}
	if len(rep.Points) != 1 || rep.Points[0].Trials != 16 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

// TestRunJSONMatchesLibrary pins the CLI to the library: -json output
// is exactly the library report for the same flags.
func TestRunJSONMatchesLibrary(t *testing.T) {
	var sb strings.Builder
	if code, err := run([]string{"-w", "24", "-h", "24", "-k", "5", "-trials", "24",
		"-pairs", "8", "-seed", "9", "-json"}, &sb); err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	want, err := reliability.Sweep(reliability.Config{
		Width: 24, Height: 24,
		Points:        []reliability.Point{{K: 5}},
		Trials:        24,
		PairsPerTrial: 8,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got reliability.Report
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(want)
	if string(a) != string(b) {
		t.Fatalf("CLI report diverges from library:\n%s\nvs\n%s", a, b)
	}
}

func TestRunCheck(t *testing.T) {
	// The reliability package's own analytic test pins this exact
	// configuration as agreeing, so -check must pass it.
	var sb strings.Builder
	code, err := run([]string{"-w", "32", "-h", "32", "-k", "8", "-trials", "512",
		"-pairs", "4", "-seed", "2", "-check"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("check failed unexpectedly:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "check ok") {
		t.Errorf("missing check verdict:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for name, args := range map[string][]string{
		"no points":   {"-w", "16", "-h", "16"},
		"bad count":   {"-k", "0"},
		"bad count2":  {"-k", "x"},
		"bad prob":    {"-p", "nope"},
		"bad flag":    {"-zz"},
		"bad config":  {"-k", "3", "-w", "1", "-h", "1"},
		"huge counts": {"-k", "999999", "-w", "8", "-h", "8"},
	} {
		if _, err := run(args, &sb); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}
