// Command meshrel runs Monte Carlo survivability sweeps: for a mesh
// size and a grid of fault intensities (counts and/or probabilities)
// it estimates the fraction of node pairs that keep a minimal path,
// the fraction certified by the paper's safety conditions, and the
// expected affected rows/columns — each with 95% confidence intervals
// and the Theorem 2 analytic cross-check.
//
// Usage:
//
//	meshrel -w 64 -h 64 -k 10,20,40,80 -trials 500
//	meshrel -w 200 -h 200 -p 0.001,0.005,0.01,0.02 -trials 200 -json
//	meshrel -w 64 -h 64 -k 20 -target 0.01 -trials 20000   # stop at CI target
//	meshrel -w 32 -h 32 -k 8 -check                        # exit 1 on analytic CI violation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"extmesh/internal/reliability"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "meshrel:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run executes the sweep and returns the process exit code: 0 on
// success, 2 when -check found the analytic prediction outside a
// Monte Carlo confidence interval.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("meshrel", flag.ContinueOnError)
	var (
		width   = fs.Int("w", 64, "mesh width")
		height  = fs.Int("h", 64, "mesh height")
		counts  = fs.String("k", "", "comma-separated fault counts to sweep")
		probs   = fs.String("p", "", "comma-separated per-node fault probabilities to sweep")
		trials  = fs.Int("trials", 400, "trials per sweep point (the budget when -target is set)")
		pairs   = fs.Int("pairs", 16, "source/destination pairs classified per trial")
		seed    = fs.Int64("seed", 1, "PRNG seed; reports are bit-reproducible")
		workers = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS; result is identical)")
		target  = fs.Float64("target", 0, "stop a point early when the minimal-path CI half-width reaches this")
		asJSON  = fs.Bool("json", false, "emit the report as JSON instead of a table")
		check   = fs.Bool("check", false, "exit 1 if Theorem 2 falls outside a Monte Carlo CI")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	points, err := parsePoints(*counts, *probs)
	if err != nil {
		return 0, err
	}
	cfg := reliability.Config{
		Width:           *width,
		Height:          *height,
		Points:          points,
		Trials:          *trials,
		PairsPerTrial:   *pairs,
		Seed:            *seed,
		Workers:         *workers,
		TargetHalfWidth: *target,
	}
	rep, err := reliability.Sweep(cfg)
	if err != nil {
		return 0, err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 0, err
		}
	} else {
		writeTable(out, rep)
	}
	if *check {
		if bad := checkAnalytic(rep); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintln(out, "CHECK FAILED:", line)
			}
			return 2, nil
		}
		fmt.Fprintf(out, "check ok: Theorem 2 inside every Monte Carlo interval (%d points)\n", len(rep.Points))
	}
	return 0, nil
}

// parsePoints builds the sweep grid from the -k and -p lists. Both may
// be given; counts come first, mirroring the paper's k-sweeps.
func parsePoints(counts, probs string) ([]reliability.Point, error) {
	var points []reliability.Point
	for _, f := range splitList(counts) {
		k, err := strconv.Atoi(f)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bad fault count %q in -k", f)
		}
		points = append(points, reliability.Point{K: k})
	}
	for _, f := range splitList(probs) {
		p, err := strconv.ParseFloat(f, 64)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad probability %q in -p", f)
		}
		points = append(points, reliability.Point{P: p})
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("nothing to sweep: give -k and/or -p")
	}
	return points, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// writeTable renders the sweep as one row per point.
func writeTable(out io.Writer, rep *reliability.Report) {
	fmt.Fprintf(out, "survivability sweep, %dx%d mesh, seed %d, %d pairs/trial\n\n",
		rep.Width, rep.Height, rep.Seed, rep.PairsPerTrial)
	fmt.Fprintf(out, "%-10s %7s  %-19s %-19s %-19s %-16s %9s\n",
		"point", "trials", "minimal", "safe", "assured(s1)", "aff.rows (MC)", "thm2")
	for _, p := range rep.Points {
		fmt.Fprintf(out, "%-10s %7d  %-19s %-19s %-19s %7.2f ±%-6.2f %9.2f\n",
			p.Point.String(), p.Trials,
			fmtEst(p.Minimal), fmtEst(p.Safe), fmtEst(p.Assured),
			p.AffectedRows.Mean, p.AffectedRows.HalfWidth(), p.AnalyticRows)
	}
}

func fmtEst(e reliability.Estimate) string {
	return fmt.Sprintf("%.4f ±%.4f", e.Fraction, e.HalfWidth())
}

// checkAnalytic returns one line per point whose Monte Carlo interval
// excludes the Theorem 2 prediction.
func checkAnalytic(rep *reliability.Report) []string {
	var bad []string
	for _, p := range rep.Points {
		if !p.AffectedRows.Contains(p.AnalyticRows) {
			bad = append(bad, fmt.Sprintf("%s: analytic rows %.3f outside [%.3f, %.3f]",
				p.Point, p.AnalyticRows, p.AffectedRows.Lo, p.AffectedRows.Hi))
		}
		if !p.AffectedCols.Contains(p.AnalyticCols) {
			bad = append(bad, fmt.Sprintf("%s: analytic cols %.3f outside [%.3f, %.3f]",
				p.Point, p.AnalyticCols, p.AffectedCols.Lo, p.AffectedCols.Hi))
		}
	}
	return bad
}
