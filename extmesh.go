// Package extmesh implements fault-tolerant minimal routing in 2-D
// meshes with limited global fault information, reproducing Wu and
// Jiang, "Extended Minimal Routing in 2-D Meshes with Faulty Blocks"
// (ICDCS 2002 / IJHPCN 2004).
//
// A Network couples a 2-D mesh with a set of faulty nodes. Faults are
// aggregated into rectangular faulty blocks (Wu's model) or into the
// tighter minimal connected components (Wang's MCC model). Each
// non-faulty node carries an extended safety level — its distance to
// the nearest fault region towards East, South, West and North — and
// the library provides:
//
//   - the sufficient safe condition (Theorem 1) and its three
//     extensions (Theorems 1a-1c) that decide, at the source, whether a
//     minimal or sub-minimal path to a destination is guaranteed;
//   - Wu's limited-information routing protocol that realizes those
//     guarantees hop by hop using boundary-line information;
//   - the exact global baselines: minimal-path existence and Wang's
//     necessary-and-sufficient coverage condition.
//
// The zero-configuration entry point:
//
//	net, err := extmesh.New(16, 16, []extmesh.Coord{{X: 5, Y: 5}})
//	if err != nil { ... }
//	a := net.Ensure(extmesh.Coord{X: 0, Y: 0}, extmesh.Coord{X: 12, Y: 9},
//		extmesh.Blocks, extmesh.DefaultStrategy())
//	if a.Verdict == extmesh.Minimal {
//		path, _, err := net.RouteAssured(extmesh.Coord{X: 0, Y: 0},
//			extmesh.Coord{X: 12, Y: 9}, extmesh.Blocks, extmesh.DefaultStrategy())
//		...
//	}
package extmesh

import (
	"fmt"
	"sync"

	"extmesh/internal/core"
	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/safety"
	"extmesh/internal/wang"
)

// Coord is the address of a mesh node; East is +X and North is +Y.
type Coord = mesh.Coord

// Rect is an inclusive rectangle of nodes, [MinX:MaxX, MinY:MaxY].
type Rect = mesh.Rect

// Level is a node's extended safety level: hops to the nearest fault
// region towards East, South, West and North (Unbounded if none).
type Level = safety.Level

// Unbounded is the safety-level distance reported when no fault region
// lies in a direction.
const Unbounded = safety.Unbounded

// Path is the node sequence a routed packet visits, endpoints included.
type Path = route.Path

// Verdict classifies what a sufficient condition guarantees.
type Verdict = core.Verdict

// Condition outcomes. Unknown means no guarantee (a minimal path may
// still exist: the conditions are sufficient, not necessary).
const (
	Unknown    = core.Unknown
	Minimal    = core.Minimal
	SubMinimal = core.SubMinimal
)

// Assurance is a positive condition result: the guaranteed path kind
// and the waypoints of the witnessing two-phase route.
type Assurance = core.Assurance

// FaultModel selects how faults are aggregated into fault regions.
type FaultModel int

// The two fault models of the paper.
const (
	// Blocks is Wu's faulty-block model: faults plus deactivated nodes
	// form disjoint rectangles.
	Blocks FaultModel = iota + 1
	// MCC is Wang's minimal-connected-component model: a node joins a
	// fault region only if every minimal route through it is doomed,
	// which shrinks the blocks to rectilinear-monotone polygons. The
	// component shape depends on the routing quadrant; methods taking a
	// source and destination pick the right labeling automatically.
	MCC
)

// String names the fault model.
func (fm FaultModel) String() string {
	switch fm {
	case Blocks:
		return "blocks"
	case MCC:
		return "mcc"
	default:
		return "unknown"
	}
}

// Strategy configures which extended sufficient conditions Ensure and
// RouteAssured apply, mirroring the cascades evaluated in the paper.
type Strategy struct {
	// UseExtension1 consults the four neighbors' safety levels
	// (Theorem 1a) and enables sub-minimal guarantees via AllowDetour.
	UseExtension1 bool
	// UseExtension2 consults on-axis safety levels within the clear
	// regions (Theorem 1b). SegmentSize controls how many
	// representatives are available: 1 keeps every node, larger values
	// keep one per segment, and 0 means one per region ("max").
	UseExtension2 bool
	SegmentSize   int
	// UseExtension3 consults pivot nodes placed by recursive 4-way
	// partition of the destination quadrant (Theorem 1c) with
	// PivotLevels levels (the paper uses up to 3).
	UseExtension3 bool
	PivotLevels   int
	// AllowDetour reports extension 1's sub-minimal verdict (one
	// detour, length D(s,d)+2) when no minimal guarantee is found.
	AllowDetour bool
}

// DefaultStrategy enables all three extensions with the paper's
// strategy-4 parameters (segment size 5, partition level 3) and allows
// sub-minimal fallbacks.
func DefaultStrategy() Strategy {
	return Strategy{
		UseExtension1: true,
		UseExtension2: true,
		SegmentSize:   core.StrategySegSize,
		UseExtension3: true,
		PivotLevels:   core.PivotLevels,
		AllowDetour:   true,
	}
}

// Network couples a mesh with a fault set and caches the derived fault
// regions, safety levels and routers. A Network is immutable after New
// and safe for concurrent use.
type Network struct {
	m  mesh.Mesh
	sc *fault.Scenario
	bs *fault.BlockSet

	mccOnce [2]sync.Once
	mccSets [2]*fault.MCCSet // indexed by fault.MCCType - 1

	modelOnce [3]sync.Once
	models    [3]*core.Model // 0: blocks, 1: MCC type-one, 2: MCC type-two

	routerOnce [3]sync.Once
	routers    [3]*route.Router

	// Optional shared orientation-view store (attachViewCache): set by a
	// DynamicNetwork so the Networks it materializes for one mutation
	// version reuse each other's boundary contours instead of each
	// paying the O(mesh) buildView.
	viewCache *route.ViewCache
	viewGen   uint64

	faultGrid []bool
	faultBits *mesh.Bits

	reachOnce sync.Once
	reach     *wang.ReachCache

	errMu    sync.Mutex
	firstErr error
}

// ReachCacheCapacity bounds the per-source reachability memo behind
// HasMinimalPath and OracleRoute: at most this many distinct query
// roots keep their O(N) grid resident, least-recently-used first out.
const ReachCacheCapacity = 1024

// New builds a network over a width x height mesh with the given
// faulty nodes and constructs the faulty blocks. It returns an error
// for invalid dimensions, out-of-mesh faults or duplicates.
func New(width, height int, faults []Coord) (*Network, error) {
	m, err := mesh.New(width, height)
	if err != nil {
		return nil, err
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		return nil, err
	}
	n := &Network{m: m, sc: sc, bs: fault.BuildBlocks(sc)}
	n.faultGrid = make([]bool, m.Size())
	for _, f := range sc.Faults {
		n.faultGrid[m.Index(f)] = true
	}
	// The bit-packed twin of faultGrid feeds the word-parallel
	// reachability sweeps behind HasMinimalPath and OracleRoute.
	n.faultBits = new(mesh.Bits).FromBools(m, n.faultGrid)
	return n, nil
}

// Width returns the mesh's X extent.
func (n *Network) Width() int { return n.m.Width }

// Height returns the mesh's Y extent.
func (n *Network) Height() int { return n.m.Height }

// Contains reports whether c addresses a node of the mesh.
func (n *Network) Contains(c Coord) bool { return n.m.Contains(c) }

// Faults returns a copy of the faulty node list.
func (n *Network) Faults() []Coord {
	out := make([]Coord, len(n.sc.Faults))
	copy(out, n.sc.Faults)
	return out
}

// IsFaulty reports whether c is a faulty node.
func (n *Network) IsFaulty(c Coord) bool { return n.sc.IsFaulty(c) }

// Blocks returns the rectangles of the faulty blocks.
func (n *Network) Blocks() []Rect {
	out := make([]Rect, len(n.bs.Blocks))
	copy(out, n.bs.Blocks)
	return out
}

// InRegion reports whether c belongs to a fault region under the given
// model. For MCC the type-one labeling (quadrant I/III routing) is
// used; use InRegionFor for a specific pair.
func (n *Network) InRegion(c Coord, fm FaultModel) bool {
	if fm == MCC {
		return n.mcc(fault.TypeOne).InMCC(c)
	}
	return n.bs.InBlock(c)
}

// InRegionFor reports whether c belongs to a fault region under the
// given model for routing from s to d (the MCC labeling depends on the
// destination's quadrant).
func (n *Network) InRegionFor(c Coord, fm FaultModel, s, d Coord) bool {
	if fm == MCC {
		return n.mcc(fault.ForQuadrant(mesh.Quadrant(s, d))).InMCC(c)
	}
	return n.bs.InBlock(c)
}

// DisabledCount returns the number of healthy nodes swallowed by fault
// regions under the model (for MCC: the type-one labeling).
func (n *Network) DisabledCount(fm FaultModel) int {
	if fm == MCC {
		return n.mcc(fault.TypeOne).DisabledCount()
	}
	return n.bs.DisabledCount()
}

// SafetyLevel returns the extended safety level of c under the model
// (for MCC: the type-one labeling, which serves quadrant I/III pairs).
func (n *Network) SafetyLevel(c Coord, fm FaultModel) (Level, error) {
	if !n.m.Contains(c) {
		return Level{}, fmt.Errorf("extmesh: node %v outside mesh", c)
	}
	md, err := n.modelFor(fm, 1)
	if err != nil {
		return Level{}, err
	}
	return md.Levels.At(c), nil
}

// reachCache lazily builds the shared per-root reachability memo over
// the raw fault grid. HasMinimalPath keys it by source, OracleRoute by
// destination; both roots live in the same cache because the sweeps
// run over the same immutable grid.
func (n *Network) reachCache() *wang.ReachCache {
	n.reachOnce.Do(func() {
		n.reach = wang.NewReachCacheBits(n.m, n.faultBits, ReachCacheCapacity)
	})
	return n.reach
}

// HasMinimalPath reports whether a minimal path from s to d exists
// that avoids the faulty nodes — the exact, global-information answer
// (Wang's necessary and sufficient condition). The first query from a
// source pays one full-mesh reachability sweep; every further query
// sharing that source (up to ReachCacheCapacity sources retained) is
// an O(1) lookup, so sweeping many destinations against one fault
// configuration is cheap.
func (n *Network) HasMinimalPath(s, d Coord) bool {
	return n.reachCache().CanReach(s, d)
}

// ReachCacheStats reports the hit/miss counters of the reachability
// memo behind HasMinimalPath and OracleRoute, for observability and
// capacity tuning.
func (n *Network) ReachCacheStats() (hits, misses uint64) {
	return n.reachCache().Stats()
}

// Safe evaluates the base sufficient safe condition (Theorem 1) for
// routing from s to d under the model.
func (n *Network) Safe(s, d Coord, fm FaultModel) bool {
	md, err := n.modelPair(fm, s, d)
	if err != nil {
		return false
	}
	return md.Safe(s, d)
}

// Ensure evaluates the strategy's conditions at s and reports the
// strongest guarantee obtained, with the witnessing waypoints.
func (n *Network) Ensure(s, d Coord, fm FaultModel, st Strategy) Assurance {
	md, err := n.modelPair(fm, s, d)
	if err != nil {
		return Assurance{}
	}
	return md.Evaluate(s, d, n.coreStrategy(st, s, d))
}

// Route routes a packet from s to d with Wu's limited-information
// protocol under the model. The path is minimal whenever the protocol
// succeeds; when the source does not satisfy any sufficient condition
// the protocol may fail with a *StuckError.
func (n *Network) Route(s, d Coord, fm FaultModel) (Path, error) {
	r, err := n.routerPair(fm, s, d)
	if err != nil {
		return nil, err
	}
	return r.Route(s, d)
}

// RouteInto is the append-style Route: the path is appended onto dst —
// which may be nil, or carry capacity retained from earlier routes —
// and the extended slice is returned, the new path occupying
// out[len(dst):]. On error the returned slice keeps dst's length
// (though possibly grown capacity). It is the building block callers
// with their own path storage (batch arenas, the serving planes, the
// simulators) use to route without a per-call allocation.
func (n *Network) RouteInto(dst Path, s, d Coord, fm FaultModel) (Path, error) {
	r, err := n.routerPair(fm, s, d)
	if err != nil {
		return dst, err
	}
	out, err := r.RouteInto(dst, s, d)
	return Path(out), err
}

// RouteAssured combines Ensure and Route: it evaluates the strategy
// and, when a guarantee exists, routes through the witness waypoints
// (the paper's two-phase routing). The returned path has length
// D(s,d) for a Minimal assurance and D(s,d)+2 for a SubMinimal one.
func (n *Network) RouteAssured(s, d Coord, fm FaultModel, st Strategy) (Path, Assurance, error) {
	a := n.Ensure(s, d, fm, st)
	if a.Verdict == Unknown {
		return nil, a, fmt.Errorf("extmesh: no sufficient condition ensures a path %v -> %v", s, d)
	}
	r, err := n.routerPair(fm, s, d)
	if err != nil {
		return nil, a, err
	}
	p, err := r.RouteVia(s, d, a.Via()...)
	if err != nil {
		return nil, a, err
	}
	return p, a, nil
}

// OracleRoute routes with full global fault information; it finds a
// minimal path exactly when HasMinimalPath holds. It is the baseline
// the limited-information protocol is measured against. The
// destination-rooted reachability sweep is memoized, so repeated
// oracle routes toward one destination cost O(path) each after the
// first.
func (n *Network) OracleRoute(s, d Coord) (Path, error) {
	if !n.m.Contains(s) || !n.m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, n.m)
	}
	return route.OracleFrom(n.m, n.faultGrid, n.reachCache().Reach(d), s, d)
}

// OracleRouteInto is the append-style OracleRoute, with RouteInto's
// buffer contract: the path is appended onto dst and the extended
// slice returned; on error the returned slice keeps dst's length.
func (n *Network) OracleRouteInto(dst Path, s, d Coord) (Path, error) {
	if !n.m.Contains(s) || !n.m.Contains(d) {
		return dst, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, n.m)
	}
	out, err := route.OracleFromInto(dst, n.m, n.reachCache().Reach(d), s, d)
	return Path(out), err
}

// StuckError is returned when the routing protocol runs out of usable
// moves; it is the route package's error type re-exported.
type StuckError = route.StuckError

// AffectedRows returns how many rows intersect a fault region under
// the model; only those rows need safety-level dissemination
// (Theorem 2 gives the analytical expectation).
func (n *Network) AffectedRows(fm FaultModel) int {
	md, err := n.modelFor(fm, 1)
	if err != nil {
		return 0
	}
	return safety.AffectedRows(n.m, md.Blocked)
}

// AffectedCols returns how many columns intersect a fault region under
// the model.
func (n *Network) AffectedCols(fm FaultModel) int {
	md, err := n.modelFor(fm, 1)
	if err != nil {
		return 0
	}
	return safety.AffectedCols(n.m, md.Blocked)
}

// mcc lazily builds the MCC labeling of the given type.
func (n *Network) mcc(t fault.MCCType) *fault.MCCSet {
	i := int(t) - 1
	n.mccOnce[i].Do(func() {
		n.mccSets[i] = fault.BuildMCC(n.sc, t)
	})
	return n.mccSets[i]
}

// modelIndex maps (FaultModel, MCCType) to the cache slot.
func modelIndex(fm FaultModel, t fault.MCCType) (int, error) {
	switch fm {
	case Blocks:
		return 0, nil
	case MCC:
		return int(t), nil // 1 or 2
	default:
		return 0, fmt.Errorf("extmesh: unknown fault model %d", fm)
	}
}

// recordErr remembers the first error a zero-value-returning accessor
// swallowed, for retrieval through Err.
func (n *Network) recordErr(err error) {
	if err == nil {
		return
	}
	n.errMu.Lock()
	if n.firstErr == nil {
		n.firstErr = err
	}
	n.errMu.Unlock()
}

// Err returns the first error swallowed by an accessor that reports
// zero values on failure (Safe, Ensure, AffectedRows, AffectedCols):
// an unknown fault model or a failed lazy model construction. Those
// methods deterministically return false / Unknown / 0 in that case;
// Err exposes why. It returns nil while every evaluation so far has
// been backed by a successfully built model.
func (n *Network) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.firstErr
}

// modelFor lazily builds the condition evaluator for a model slot.
// Construction failures are remembered for Err.
func (n *Network) modelFor(fm FaultModel, t fault.MCCType) (*core.Model, error) {
	idx, err := modelIndex(fm, t)
	if err != nil {
		n.recordErr(err)
		return nil, err
	}
	n.modelOnce[idx].Do(func() {
		var blocked []bool
		if fm == Blocks {
			blocked = n.bs.BlockedGrid()
		} else {
			blocked = n.mcc(t).BlockedGrid()
		}
		md, err := core.NewModel(n.m, blocked)
		if err == nil {
			n.models[idx] = md
		} else {
			n.recordErr(fmt.Errorf("extmesh: model construction failed: %w", err))
		}
	})
	if n.models[idx] == nil {
		err := fmt.Errorf("extmesh: model construction failed")
		n.recordErr(err)
		return nil, err
	}
	return n.models[idx], nil
}

// modelPair returns the evaluator appropriate for an (s, d) pair.
func (n *Network) modelPair(fm FaultModel, s, d Coord) (*core.Model, error) {
	t := fault.TypeOne
	if fm == MCC {
		t = fault.ForQuadrant(mesh.Quadrant(s, d))
	}
	return n.modelFor(fm, t)
}

// routerPair returns the Wu-protocol router for an (s, d) pair.
func (n *Network) routerPair(fm FaultModel, s, d Coord) (*route.Router, error) {
	t := fault.TypeOne
	if fm == MCC {
		t = fault.ForQuadrant(mesh.Quadrant(s, d))
	}
	idx, err := modelIndex(fm, t)
	if err != nil {
		return nil, err
	}
	md, err := n.modelFor(fm, t)
	if err != nil {
		return nil, err
	}
	n.routerOnce[idx].Do(func() {
		if n.viewCache != nil {
			n.routers[idx] = route.NewRouterCached(n.m, md.Blocked, n.viewCache, n.viewGen, idx)
		} else {
			n.routers[idx] = route.NewRouter(n.m, md.Blocked)
		}
	})
	return n.routers[idx], nil
}

// attachViewCache makes the Network's routers publish and reuse
// orientation views through vc, stamped with gen. A DynamicNetwork
// calls it on every Network it materializes, passing its mutation
// version as gen, before the Network is shared; it must not be called
// after the first Route.
func (n *Network) attachViewCache(vc *route.ViewCache, gen uint64) {
	n.viewCache = vc
	n.viewGen = gen
}

// coreStrategy translates the public strategy into the internal one,
// generating the pivot set for the destination quadrant.
func (n *Network) coreStrategy(st Strategy, s, d Coord) core.Strategy {
	cs := core.Strategy{
		UseExt1:         st.UseExtension1,
		UseExt2:         st.UseExtension2,
		SegSize:         st.SegmentSize,
		UseExt3:         st.UseExtension3,
		AllowSubMinimal: st.AllowDetour,
	}
	if st.UseExtension3 {
		levels := st.PivotLevels
		if levels <= 0 {
			levels = core.PivotLevels
		}
		region := Rect{
			MinX: min(s.X, d.X), MinY: min(s.Y, d.Y),
			MaxX: max(s.X, d.X), MaxY: max(s.Y, d.Y),
		}
		cs.Pivots = safety.Pivots(region, levels, safety.CenterPivots, nil)
	}
	return cs
}

// SafetyGrid exposes the full extended-safety-level grid under the
// model (for MCC: the type-one labeling), for bulk inspection and
// visualization. The grid is shared; callers must not mutate it.
func (n *Network) SafetyGrid(fm FaultModel) (*safety.Grid, error) {
	md, err := n.modelFor(fm, 1)
	if err != nil {
		return nil, err
	}
	return md.Levels, nil
}

// HasMinimalPathAvoidingBlocks reports whether a minimal path from s
// to d exists that avoids every node of every fault region under the
// given model — the strongest path any region-respecting router can
// produce. For the block model this evaluates Wang's coverage
// condition over the block rectangles; for MCC it runs the exact DP
// over the member grid of the pair's quadrant labeling.
func (n *Network) HasMinimalPathAvoidingBlocks(s, d Coord, fm FaultModel) bool {
	if !n.m.Contains(s) || !n.m.Contains(d) {
		return false
	}
	if fm == Blocks {
		if n.bs.InBlock(s) || n.bs.InBlock(d) {
			return false
		}
		return wang.HasMinimalPathBlocks(n.bs.Blocks, s, d)
	}
	md, err := n.modelPair(fm, s, d)
	if err != nil {
		return false
	}
	return wang.MinimalPathExists(n.m, s, d, md.Blocked)
}

// DFSRoute routes with the header-information baseline the paper
// contrasts its model against: depth-first search with backtracking,
// the packet header carrying the visited set. It delivers whenever the
// endpoints are connected in the fault-region-free subgraph, but the
// walk (which the returned path records, backtracking included) need
// not be minimal.
func (n *Network) DFSRoute(s, d Coord, fm FaultModel) (Path, error) {
	md, err := n.modelPair(fm, s, d)
	if err != nil {
		return nil, err
	}
	return route.DFSRoute(n.m, md.Blocked, s, d)
}
