package extmesh

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

func pathsEqual(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntoVariantsMatchAllocatingForms pins every append-style API to
// its allocating form: same pairs, same success/failure, identical
// paths, with the Into form threaded through one reused buffer/arena
// so any cross-call aliasing bug would corrupt a later comparison.
func TestIntoVariantsMatchAllocatingForms(t *testing.T) {
	m := mesh.Mesh{Width: 48, Height: 48}
	faults, err := fault.RandomFaults(m, 70, rand.New(rand.NewSource(53)), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m.Width, m.Height, faults)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	pairs := make([]Pair, 0, 128)
	for len(pairs) < cap(pairs) {
		pairs = append(pairs, Pair{
			Src: Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)},
			Dst: Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)},
		})
	}

	for _, fm := range []FaultModel{Blocks, MCC} {
		var buf Path
		for _, p := range pairs {
			want, wantErr := n.Route(p.Src, p.Dst, fm)
			got, gotErr := n.RouteInto(buf[:0], p.Src, p.Dst, fm)
			buf = got
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v RouteInto %v->%v err=%v, Route err=%v", fm, p.Src, p.Dst, gotErr, wantErr)
			}
			if wantErr == nil && !pathsEqual(want, got) {
				t.Fatalf("%v RouteInto %v->%v = %v, want %v", fm, p.Src, p.Dst, got, want)
			}
		}

		want := n.RouteMany(pairs, fm)
		var a RouteArena
		for round := 0; round < 3; round++ { // warm arena rounds reuse slabs
			got := n.RouteManyInto(&a, pairs, fm)
			for i := range pairs {
				if (want[i].Err == nil) != (got[i].Err == nil) {
					t.Fatalf("%v RouteManyInto[%d] err=%v, RouteMany err=%v", fm, i, got[i].Err, want[i].Err)
				}
				if want[i].Err == nil && !pathsEqual(want[i].Path, got[i].Path) {
					t.Fatalf("%v RouteManyInto[%d] = %v, want %v", fm, i, got[i].Path, want[i].Path)
				}
			}
		}
	}

	var buf Path
	for _, p := range pairs {
		want, wantErr := n.OracleRoute(p.Src, p.Dst)
		got, gotErr := n.OracleRouteInto(buf[:0], p.Src, p.Dst)
		buf = got
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("OracleRouteInto %v->%v err=%v, OracleRoute err=%v", p.Src, p.Dst, gotErr, wantErr)
		}
		if wantErr == nil && !pathsEqual(want, got) {
			t.Fatalf("OracleRouteInto %v->%v = %v, want %v", p.Src, p.Dst, got, want)
		}
	}

	want := n.OracleRouteMany(pairs)
	var a RouteArena
	for round := 0; round < 3; round++ {
		got := n.OracleRouteManyInto(&a, pairs)
		for i := range pairs {
			if (want[i].Err == nil) != (got[i].Err == nil) {
				t.Fatalf("OracleRouteManyInto[%d] err=%v, OracleRouteMany err=%v", i, got[i].Err, want[i].Err)
			}
			if want[i].Err == nil && !pathsEqual(want[i].Path, got[i].Path) {
				t.Fatalf("OracleRouteManyInto[%d] = %v, want %v", i, got[i].Path, want[i].Path)
			}
		}
	}

	// HasMinimalPathAllInto against HasMinimalPath, reusing one buffer.
	src := Coord{X: 1, Y: 1}
	dests := make([]Coord, 64)
	for i := range dests {
		dests[i] = Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)}
	}
	var bools []bool
	for round := 0; round < 2; round++ {
		bools = n.HasMinimalPathAllInto(bools, src, dests)
		for i, d := range dests {
			if want := n.HasMinimalPath(src, d); bools[i] != want {
				t.Fatalf("HasMinimalPathAllInto[%d] = %v, want %v", i, bools[i], want)
			}
		}
	}
}
