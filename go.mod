module extmesh

go 1.22
