package extmesh

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pair is one source/destination routing request for RouteMany.
type Pair struct {
	Src Coord
	Dst Coord
}

// RouteResult is the outcome of one RouteMany request: the path found
// or the error the router reported.
type RouteResult struct {
	Path Path
	Err  error
}

// batchSerialLimit is the job count below which the batch APIs run
// inline: spawning workers costs more than a handful of evaluations.
const batchSerialLimit = 16

// fanOut runs fn(i) for i in [0, jobs) on up to runtime.GOMAXPROCS(0)
// workers sharing the Network's cached models — the worker-pool shape
// proven in internal/sim. Small batches run inline. fn must be safe
// for concurrent invocation with distinct i; results are written to
// index i, so output order is deterministic regardless of scheduling.
func fanOut(jobs int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if jobs < batchSerialLimit || workers < 2 {
		for i := 0; i < jobs; i++ {
			fn(i)
		}
		return
	}
	if workers > jobs {
		workers = jobs
	}
	var (
		wg   sync.WaitGroup
		next int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= jobs {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// EnsureAll evaluates the strategy's conditions from one source toward
// every destination and returns one Assurance per destination, in
// order. It is the batch counterpart of Ensure: the safety-level model
// is built once and shared, and destinations fan out over
// runtime.GOMAXPROCS(0) workers, so sweeping a destination set against
// one fault configuration costs O(1) model work per query.
func (n *Network) EnsureAll(s Coord, dests []Coord, fm FaultModel, st Strategy) []Assurance {
	out := make([]Assurance, len(dests))
	if len(dests) == 0 {
		return out
	}
	// Force the lazy single-flight model builds before fanning out so
	// every worker starts on the hit path. Both MCC labelings may be
	// needed, depending on the destinations' quadrants.
	if fm == MCC {
		n.modelPair(fm, s, dests[0])
	} else {
		n.modelFor(fm, 1)
	}
	fanOut(len(dests), func(i int) {
		out[i] = n.Ensure(s, dests[i], fm, st)
	})
	return out
}

// HasMinimalPathAll reports, per destination, whether a minimal path
// from s exists that avoids the faulty nodes. The whole batch is
// served by a single reachability sweep from s (memoized for later
// calls), so it costs O(N) total instead of one DP per destination.
func (n *Network) HasMinimalPathAll(s Coord, dests []Coord) []bool {
	out := make([]bool, len(dests))
	c := n.reachCache()
	for i, d := range dests {
		out[i] = c.CanReach(s, d)
	}
	return out
}

// RouteMany routes every pair with Wu's limited-information protocol
// under the model and returns one result per pair, in order. Pairs fan
// out over runtime.GOMAXPROCS(0) workers sharing the Network's cached
// routers, so batch routing throughput scales with cores while each
// route stays identical to the sequential Route.
func (n *Network) RouteMany(pairs []Pair, fm FaultModel) []RouteResult {
	out := make([]RouteResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	// Pre-build the router(s) the batch needs on this goroutine so the
	// workers share them without duplicate lazy construction.
	n.routerPair(fm, pairs[0].Src, pairs[0].Dst)
	fanOut(len(pairs), func(i int) {
		out[i].Path, out[i].Err = n.Route(pairs[i].Src, pairs[i].Dst, fm)
	})
	return out
}

// OracleRouteMany routes every pair with the full-information oracle.
// Destination-rooted reachability sweeps are shared through the
// Network's reach cache, so routing many pairs toward few distinct
// destinations costs one sweep per destination, not per pair.
func (n *Network) OracleRouteMany(pairs []Pair) []RouteResult {
	out := make([]RouteResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	n.reachCache()
	fanOut(len(pairs), func(i int) {
		out[i].Path, out[i].Err = n.OracleRoute(pairs[i].Src, pairs[i].Dst)
	})
	return out
}
