package extmesh

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"extmesh/internal/route"
	"extmesh/internal/wang"
)

// Pair is one source/destination routing request for RouteMany.
type Pair struct {
	Src Coord
	Dst Coord
}

// RouteResult is the outcome of one RouteMany request: the path found
// or the error the router reported.
type RouteResult struct {
	Path Path
	Err  error
}

// batchSerialLimit is the job count below which the batch APIs run
// inline: spawning workers costs more than a handful of evaluations.
const batchSerialLimit = 16

// fanOutWorkers runs fn(w, i) for i in [0, jobs) on up to
// runtime.GOMAXPROCS(0) workers sharing the Network's cached models —
// the worker-pool shape proven in internal/sim. w identifies the
// worker: each w below the pool size is driven by exactly one
// goroutine at a time, so per-worker scratch (the path slabs of a
// RouteArena) needs no further synchronization. Small batches run
// inline on worker 0. fn must be safe for concurrent invocation with
// distinct i; results are written to index i, so output order is
// deterministic regardless of scheduling.
func fanOutWorkers(jobs int, fn func(worker, i int)) {
	fanOutJob(jobs, funcJob(fn))
}

// fanOut is fanOutWorkers for callers without per-worker state.
func fanOut(jobs int, fn func(i int)) {
	fanOutWorkers(jobs, func(_, i int) { fn(i) })
}

// batchJob is the work item fanOutJob dispatches. Batch methods with a
// zero-allocation contract implement it on a struct embedded in the
// caller's arena: passing that struct's pointer through the interface
// allocates nothing, whereas a closure referenced by the goroutine
// launch is forced to the heap even when the batch runs inline.
type batchJob interface {
	run(worker, i int)
}

// funcJob adapts a plain function to batchJob for callers that don't
// need the zero-allocation inline path.
type funcJob func(worker, i int)

func (f funcJob) run(worker, i int) { f(worker, i) }

// fanOutJob runs j.run(w, i) for i in [0, jobs) under fanOutWorkers's
// scheduling contract.
func fanOutJob(jobs int, j batchJob) {
	workers := runtime.GOMAXPROCS(0)
	if jobs < batchSerialLimit || workers < 2 {
		for i := 0; i < jobs; i++ {
			j.run(0, i)
		}
		return
	}
	if workers > jobs {
		workers = jobs
	}
	var (
		wg   sync.WaitGroup
		next int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= jobs {
					return
				}
				j.run(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// RouteArena owns the storage a route batch writes into: the result
// slice plus one coordinate slab per worker that the paths are packed
// into back to back. Reusing one arena across batches reuses that
// storage, so a warm batch of routes allocates nothing; in exchange,
// the paths a batch returned remain valid only until the arena's next
// use. The zero value is ready. An arena must not be used by two
// batches concurrently, and must not be shared between Networks whose
// results are still being read.
type RouteArena struct {
	results []RouteResult
	slabs   [][]Coord

	// Embedded job headers: batch state lives here instead of in a
	// per-call closure, so dispatching a warm batch allocates nothing.
	rj routeManyJob
	oj oracleManyJob
}

// prepare sizes the arena for a batch of n jobs and returns the
// zeroed result slice.
func (a *RouteArena) prepare(n int) []RouteResult {
	if cap(a.results) < n {
		a.results = make([]RouteResult, n)
	} else {
		a.results = a.results[:n]
		for i := range a.results {
			a.results[i] = RouteResult{}
		}
	}
	if w := runtime.GOMAXPROCS(0); len(a.slabs) < w {
		a.slabs = append(a.slabs, make([][]Coord, w-len(a.slabs))...)
	}
	for i := range a.slabs {
		a.slabs[i] = a.slabs[i][:0]
	}
	return a.results
}

// EnsureAll evaluates the strategy's conditions from one source toward
// every destination and returns one Assurance per destination, in
// order. It is the batch counterpart of Ensure: the safety-level model
// is built once and shared, and destinations fan out over
// runtime.GOMAXPROCS(0) workers, so sweeping a destination set against
// one fault configuration costs O(1) model work per query.
func (n *Network) EnsureAll(s Coord, dests []Coord, fm FaultModel, st Strategy) []Assurance {
	out := make([]Assurance, len(dests))
	if len(dests) == 0 {
		return out
	}
	// Force the lazy single-flight model builds before fanning out so
	// every worker starts on the hit path. Both MCC labelings may be
	// needed, depending on the destinations' quadrants.
	if fm == MCC {
		n.modelPair(fm, s, dests[0])
	} else {
		n.modelFor(fm, 1)
	}
	fanOut(len(dests), func(i int) {
		out[i] = n.Ensure(s, dests[i], fm, st)
	})
	return out
}

// HasMinimalPathAll reports, per destination, whether a minimal path
// from s exists that avoids the faulty nodes. The whole batch is
// served by a single reachability sweep from s (memoized for later
// calls), so it costs O(N) total instead of one DP per destination.
func (n *Network) HasMinimalPathAll(s Coord, dests []Coord) []bool {
	return n.HasMinimalPathAllInto(nil, s, dests)
}

// HasMinimalPathAllInto is HasMinimalPathAll with a caller-supplied
// result buffer: the answers are written into dst (reallocated only
// when its capacity is short) and the resized slice returned, so a
// caller reusing one buffer sweeps destination sets with zero
// steady-state allocation. The source's reachability grid is resolved
// from the memo once per call, not once per destination.
func (n *Network) HasMinimalPathAllInto(dst []bool, s Coord, dests []Coord) []bool {
	if cap(dst) < len(dests) {
		dst = make([]bool, len(dests))
	} else {
		dst = dst[:len(dests)]
	}
	if len(dests) == 0 {
		return dst
	}
	if !n.m.Contains(s) {
		for i := range dst {
			dst[i] = false
		}
		return dst
	}
	r := n.reachCache().Reach(s)
	for i, d := range dests {
		dst[i] = n.m.Contains(d) && r.CanReach(d)
	}
	return dst
}

// RouteMany routes every pair with Wu's limited-information protocol
// under the model and returns one result per pair, in order. Pairs fan
// out over runtime.GOMAXPROCS(0) workers sharing the Network's cached
// routers, so batch routing throughput scales with cores while each
// route stays identical to the sequential Route.
func (n *Network) RouteMany(pairs []Pair, fm FaultModel) []RouteResult {
	var a RouteArena // single-use: the results own the arena's storage
	return n.RouteManyInto(&a, pairs, fm)
}

// RouteManyInto is RouteMany with caller-owned storage: results and
// path coordinates are written into the arena, whose buffers are
// reused across calls, so a warm batch runs with zero allocations.
// The returned slice and the paths it holds alias the arena and are
// valid only until its next use.
func (n *Network) RouteManyInto(a *RouteArena, pairs []Pair, fm FaultModel) []RouteResult {
	out := a.prepare(len(pairs))
	if len(pairs) == 0 {
		return out
	}
	// Pre-build the router(s) the batch needs on this goroutine so the
	// workers share them without duplicate lazy construction.
	n.routerPair(fm, pairs[0].Src, pairs[0].Dst)
	a.rj = routeManyJob{n: n, a: a, pairs: pairs, fm: fm, out: out}
	fanOutJob(len(pairs), &a.rj)
	a.rj = routeManyJob{}
	return out
}

// routeManyJob is RouteManyInto's per-pair work, embedded in the arena
// (see batchJob).
type routeManyJob struct {
	n     *Network
	a     *RouteArena
	pairs []Pair
	fm    FaultModel
	out   []RouteResult
}

func (j *routeManyJob) run(w, i int) {
	r, err := j.n.routerPair(j.fm, j.pairs[i].Src, j.pairs[i].Dst)
	if err != nil {
		j.out[i].Err = err
		return
	}
	slab := j.a.slabs[w]
	start := len(slab)
	grown, err := r.RouteInto(slab, j.pairs[i].Src, j.pairs[i].Dst)
	j.a.slabs[w] = grown
	if err != nil {
		j.out[i].Err = err
		return
	}
	// Three-index subslice: an append through the result cannot clobber
	// the slab region the next path is packed into.
	j.out[i].Path = Path(grown[start:len(grown):len(grown)])
}

// OracleRouteMany routes every pair with the full-information oracle.
// Destination-rooted reachability sweeps are shared through the
// Network's reach cache, so routing many pairs toward few distinct
// destinations costs one sweep per destination, not per pair.
func (n *Network) OracleRouteMany(pairs []Pair) []RouteResult {
	var a RouteArena
	return n.OracleRouteManyInto(&a, pairs)
}

// OracleRouteManyInto is OracleRouteMany with caller-owned storage,
// under RouteManyInto's arena contract.
func (n *Network) OracleRouteManyInto(a *RouteArena, pairs []Pair) []RouteResult {
	out := a.prepare(len(pairs))
	if len(pairs) == 0 {
		return out
	}
	c := n.reachCache()
	a.oj = oracleManyJob{n: n, a: a, c: c, pairs: pairs, out: out}
	fanOutJob(len(pairs), &a.oj)
	a.oj = oracleManyJob{}
	return out
}

// oracleManyJob is OracleRouteManyInto's per-pair work, embedded in
// the arena (see batchJob).
type oracleManyJob struct {
	n     *Network
	a     *RouteArena
	c     *wang.ReachCache
	pairs []Pair
	out   []RouteResult
}

func (j *oracleManyJob) run(w, i int) {
	s, d := j.pairs[i].Src, j.pairs[i].Dst
	if !j.n.m.Contains(s) || !j.n.m.Contains(d) {
		j.out[i].Err = fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, j.n.m)
		return
	}
	slab := j.a.slabs[w]
	start := len(slab)
	grown, err := route.OracleFromInto(slab, j.n.m, j.c.Reach(d), s, d)
	j.a.slabs[w] = grown
	if err != nil {
		j.out[i].Err = err
		return
	}
	j.out[i].Path = Path(grown[start:len(grown):len(grown)])
}
