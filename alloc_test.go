package extmesh

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

// TestHasMinimalPathCachedAllocationFree pins the warm-cache existence
// query at zero allocations: after the first query from a source pays
// its reachability sweep, every further query sharing that source must
// be a pure lookup.
func TestHasMinimalPathCachedAllocationFree(t *testing.T) {
	m := mesh.Mesh{Width: 48, Height: 48}
	src := Coord{X: 3, Y: 3}
	faults, err := fault.RandomFaults(m, 60, rand.New(rand.NewSource(17)), func(c mesh.Coord) bool { return c == src })
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m.Width, m.Height, faults)
	if err != nil {
		t.Fatal(err)
	}
	dests := []Coord{{X: 45, Y: 44}, {X: 40, Y: 47}, {X: 47, Y: 30}, {X: 20, Y: 46}}
	n.HasMinimalPath(src, dests[0]) // pay the per-source sweep up front
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		n.HasMinimalPath(src, dests[i%len(dests)])
		i++
	})
	if avg != 0 {
		t.Errorf("cached HasMinimalPath allocates %.1f times per query, want 0", avg)
	}
}
