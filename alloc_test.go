package extmesh

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

// TestHasMinimalPathCachedAllocationFree pins the warm-cache existence
// query at zero allocations: after the first query from a source pays
// its reachability sweep, every further query sharing that source must
// be a pure lookup.
func TestHasMinimalPathCachedAllocationFree(t *testing.T) {
	m := mesh.Mesh{Width: 48, Height: 48}
	src := Coord{X: 3, Y: 3}
	faults, err := fault.RandomFaults(m, 60, rand.New(rand.NewSource(17)), func(c mesh.Coord) bool { return c == src })
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m.Width, m.Height, faults)
	if err != nil {
		t.Fatal(err)
	}
	dests := []Coord{{X: 45, Y: 44}, {X: 40, Y: 47}, {X: 47, Y: 30}, {X: 20, Y: 46}}
	n.HasMinimalPath(src, dests[0]) // pay the per-source sweep up front
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		n.HasMinimalPath(src, dests[i%len(dests)])
		i++
	})
	if avg != 0 {
		t.Errorf("cached HasMinimalPath allocates %.1f times per query, want 0", avg)
	}
}

// TestHasMinimalPathAllIntoAllocationFree pins the batch existence
// sweep at zero allocations once the caller supplies the result buffer
// and the source's reachability grid is memoized.
func TestHasMinimalPathAllIntoAllocationFree(t *testing.T) {
	m := mesh.Mesh{Width: 48, Height: 48}
	src := Coord{X: 3, Y: 3}
	faults, err := fault.RandomFaults(m, 60, rand.New(rand.NewSource(17)), func(c mesh.Coord) bool { return c == src })
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m.Width, m.Height, faults)
	if err != nil {
		t.Fatal(err)
	}
	dests := make([]Coord, 0, 64)
	rng := rand.New(rand.NewSource(23))
	for len(dests) < 64 {
		dests = append(dests, Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)})
	}
	var buf []bool
	buf = n.HasMinimalPathAllInto(buf, src, dests) // sweep + buffer growth up front
	avg := testing.AllocsPerRun(200, func() {
		buf = n.HasMinimalPathAllInto(buf, src, dests)
	})
	if avg != 0 {
		t.Errorf("warm HasMinimalPathAllInto allocates %.1f times per batch, want 0", avg)
	}
}

// TestRouteManyIntoAllocationFree pins the warm batch route path at
// zero allocations: after the first batch builds the router's views
// and grows the arena's slabs, re-routing the same batch through the
// arena must touch only reused storage.
func TestRouteManyIntoAllocationFree(t *testing.T) {
	m := mesh.Mesh{Width: 64, Height: 64}
	faults, err := fault.RandomFaults(m, 80, rand.New(rand.NewSource(29)), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m.Width, m.Height, faults)
	if err != nil {
		t.Fatal(err)
	}
	// Routes that fail allocate their error; the zero-alloc contract is
	// for delivered routes, so keep only pairs the protocol serves.
	rng := rand.New(rand.NewSource(31))
	var pairs []Pair
	for len(pairs) < 256 {
		p := Pair{
			Src: Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)},
			Dst: Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)},
		}
		if _, err := n.Route(p.Src, p.Dst, Blocks); err == nil {
			pairs = append(pairs, p)
		}
	}
	var a RouteArena
	n.RouteManyInto(&a, pairs, Blocks) // warm: views, router, slab growth
	n.RouteManyInto(&a, pairs, Blocks)
	avg := testing.AllocsPerRun(50, func() {
		n.RouteManyInto(&a, pairs, Blocks)
	})
	// The fan-out spawns worker goroutines; those are scheduler state,
	// not per-route garbage, but AllocsPerRun still observes them. Route
	// assembly itself must be allocation-free, so serial-limit batches
	// (run inline) are the strict gate below; here we only bound the
	// per-batch constant.
	if avg > 64 {
		t.Errorf("warm RouteManyInto allocates %.1f times per batch; want only the worker-pool constant", avg)
	}

	small := pairs[:batchSerialLimit-1] // inline path: no goroutines
	n.RouteManyInto(&a, small, Blocks)
	avg = testing.AllocsPerRun(200, func() {
		n.RouteManyInto(&a, small, Blocks)
	})
	if avg != 0 {
		t.Errorf("warm inline RouteManyInto allocates %.1f times per batch, want 0", avg)
	}
}

// TestOracleRouteManyIntoAllocationFree is the oracle-batch analogue
// of TestRouteManyIntoAllocationFree's inline gate.
func TestOracleRouteManyIntoAllocationFree(t *testing.T) {
	m := mesh.Mesh{Width: 64, Height: 64}
	faults, err := fault.RandomFaults(m, 80, rand.New(rand.NewSource(37)), nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(m.Width, m.Height, faults)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	var pairs []Pair
	dests := []Coord{{X: 60, Y: 60}, {X: 5, Y: 61}, {X: 61, Y: 6}}
	for len(pairs) < batchSerialLimit-1 {
		p := Pair{
			Src: Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)},
			Dst: dests[len(pairs)%len(dests)],
		}
		if _, err := n.OracleRoute(p.Src, p.Dst); err == nil {
			pairs = append(pairs, p)
		}
	}
	var a RouteArena
	n.OracleRouteManyInto(&a, pairs) // sweeps + slab growth up front
	n.OracleRouteManyInto(&a, pairs)
	avg := testing.AllocsPerRun(200, func() {
		n.OracleRouteManyInto(&a, pairs)
	})
	if avg != 0 {
		t.Errorf("warm inline OracleRouteManyInto allocates %.1f times per batch, want 0", avg)
	}
}
