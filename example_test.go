package extmesh_test

import (
	"fmt"
	"log"

	"extmesh"
)

// The Figure 1 fault pattern of the paper: eight faults that aggregate
// into the faulty block [2:6, 3:6] of a 12x12 mesh.
func paperFaults() []extmesh.Coord {
	return []extmesh.Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	}
}

func ExampleNew() {
	net, err := extmesh.New(12, 12, paperFaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blocks:", net.Blocks())
	fmt.Println("deactivated:", net.DisabledCount(extmesh.Blocks), "(blocks),",
		net.DisabledCount(extmesh.MCC), "(MCC)")
	// Output:
	// blocks: [[2:6, 3:6]]
	// deactivated: 12 (blocks), 8 (MCC)
}

func ExampleNetwork_SafetyLevel() {
	net, err := extmesh.New(12, 12, paperFaults())
	if err != nil {
		log.Fatal(err)
	}
	lvl, err := net.SafetyLevel(extmesh.Coord{X: 0, Y: 3}, extmesh.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(lvl)
	// Output:
	// (2,inf,inf,inf)
}

func ExampleNetwork_Ensure() {
	net, err := extmesh.New(12, 12, paperFaults())
	if err != nil {
		log.Fatal(err)
	}
	s := extmesh.Coord{X: 0, Y: 3} // row blocked at x=2: unsafe
	d := extmesh.Coord{X: 9, Y: 10}
	fmt.Println("base safe:", net.Safe(s, d, extmesh.Blocks))
	a := net.Ensure(s, d, extmesh.Blocks, extmesh.DefaultStrategy())
	fmt.Println("strategy verdict:", a.Verdict)
	// Output:
	// base safe: false
	// strategy verdict: minimal
}

func ExampleNetwork_RouteAssured() {
	net, err := extmesh.New(12, 12, paperFaults())
	if err != nil {
		log.Fatal(err)
	}
	s := extmesh.Coord{X: 0, Y: 0}
	d := extmesh.Coord{X: 9, Y: 5}
	path, a, err := net.RouteAssured(s, d, extmesh.Blocks, extmesh.DefaultStrategy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Verdict, "in", path.Hops(), "hops")
	// Output:
	// minimal in 14 hops
}

func ExampleNewDynamic() {
	dyn, err := extmesh.NewDynamic(10, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := dyn.AddFault(extmesh.Coord{X: 4, Y: 0}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("level at origin:", dyn.SafetyLevel(extmesh.Coord{X: 0, Y: 0}))
	cascade, rows, cols := dyn.LastUpdateCost()
	fmt.Printf("update touched %d node, %d row, %d column\n", cascade, rows, cols)
	// Output:
	// level at origin: (4,inf,inf,inf)
	// update touched 1 node, 1 row, 1 column
}

func ExampleNetwork_SimulateTraffic() {
	net, err := extmesh.New(12, 12, paperFaults())
	if err != nil {
		log.Fatal(err)
	}
	opts := extmesh.DefaultTrafficOptions()
	opts.Cycles = 200
	opts.Warmup = 40
	st, err := net.SimulateTraffic(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all delivered packets minimal:", st.AvgStretch == 1.0)
	fmt.Println("stranded:", st.Undeliverable)
	// Output:
	// all delivered packets minimal: true
	// stranded: 0
}

func ExampleNetwork_HasMinimalPathAvoidingBlocks() {
	net, err := extmesh.New(12, 12, paperFaults())
	if err != nil {
		log.Fatal(err)
	}
	s := extmesh.Coord{X: 0, Y: 0}
	d := extmesh.Coord{X: 2, Y: 6} // healthy, but swallowed by the block
	fmt.Println("fault-avoiding:", net.HasMinimalPath(s, d))
	fmt.Println("block-avoiding:", net.HasMinimalPathAvoidingBlocks(s, d, extmesh.Blocks))
	fmt.Println("MCC-avoiding:  ", net.HasMinimalPathAvoidingBlocks(s, d, extmesh.MCC))
	// Output:
	// fault-avoiding: true
	// block-avoiding: false
	// MCC-avoiding:   true
}
