// Package meshclient is the typed, resilient client for a meshserved
// daemon: every query, batch and admin endpoint behind per-request
// timeouts, exponential backoff with jitter that honors the server's
// Retry-After hints, a circuit breaker, and idempotency-aware retry
// rules.
//
// Retry semantics follow the server's admission contract: a 429 means
// the server shed the request before doing any work, so it is always
// safe to retry; a 5xx or transport error is retried only for
// idempotent calls (all queries; PUT uploads), because a mutation
// whose response was lost may have applied. Dial failures — the
// connection never left this host — are retried for every call.
package meshclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Client. The zero value (plus BaseURL) gives
// conservative production defaults.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8423".
	BaseURL string

	// HTTPClient overrides the assembled client entirely; when set,
	// the timeout fields below are ignored.
	HTTPClient *http.Client
	// Transport overrides the transport of the assembled client —
	// the hook the chaos harness uses.
	Transport http.RoundTripper

	// DialTimeout bounds TCP connection establishment; 0 selects 2s.
	DialTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for response headers after
	// the request is written; 0 selects 10s.
	ResponseHeaderTimeout time.Duration
	// AttemptTimeout bounds one full attempt (dial, write, read);
	// 0 selects 30s. The caller's context bounds the whole call
	// including retries.
	AttemptTimeout time.Duration

	// MaxRetries is how many times a failed attempt is retried
	// (total attempts = MaxRetries+1); 0 selects 3, negative disables
	// retries.
	MaxRetries int
	// BaseBackoff is the first retry delay, doubled each retry;
	// 0 selects 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the computed delay; 0 selects 1s.
	MaxBackoff time.Duration
	// RetryAfterCap bounds how long a server Retry-After hint is
	// honored; 0 selects 5s.
	RetryAfterCap time.Duration
	// RetrySeed seeds the jitter PRNG, so tests and load drivers are
	// reproducible; 0 selects 1.
	RetrySeed int64

	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed attempts; 0 selects 16, negative disables
	// the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a half-open probe; 0 selects 500ms.
	BreakerCooldown time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ResponseHeaderTimeout <= 0 {
		o.ResponseHeaderTimeout = 10 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.RetryAfterCap <= 0 {
		o.RetryAfterCap = 5 * time.Second
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 16
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
	return o
}

// ErrCircuitOpen is returned (wrapped) while the circuit breaker is
// open: the server failed repeatedly and the client is giving it
// BreakerCooldown of quiet before probing again.
var ErrCircuitOpen = errors.New("meshclient: circuit breaker open")

// APIError is a non-2xx response from the server that was not (or
// could no longer be) retried. Code is the server's machine-readable
// discriminator ("read_only", "fenced", "stale_epoch",
// "replication_unconfirmed"), empty for plain errors.
type APIError struct {
	Status  int
	Message string
	Code    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("meshclient: server returned %d: %s", e.Status, e.Message)
}

// Counts is a snapshot of the client's attempt-level accounting.
type Counts struct {
	Requests         uint64 // calls into the client
	Attempts         uint64 // HTTP attempts (>= Requests when retrying)
	Retries          uint64 // attempts beyond a call's first
	Shed             uint64 // 429 responses observed (attempt level)
	NetErrors        uint64 // transport or body-read failures observed
	ServerErrors     uint64 // 5xx responses observed
	BreakerFastFails uint64 // calls rejected while the breaker was open
	BreakerOpens     uint64 // closed→open transitions (incl. failed probes re-opening)
	BreakerProbes    uint64 // half-open probes admitted
}

// Client is a resilient meshserved client. All methods are safe for
// concurrent use; one Client shares one connection pool, one breaker
// and one jitter stream.
type Client struct {
	base string
	http *http.Client
	opts Options

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	breaker breaker

	requests, attempts, retries   atomic.Uint64
	shed, netErrors, serverErrors atomic.Uint64
	breakerFastFails              atomic.Uint64
}

// New assembles a client for the daemon at opts.BaseURL.
func New(opts Options) (*Client, error) {
	opts = opts.withDefaults()
	base := strings.TrimSuffix(opts.BaseURL, "/")
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("meshclient: invalid base URL %q", opts.BaseURL)
	}
	hc := opts.HTTPClient
	if hc == nil {
		var rt http.RoundTripper
		if opts.Transport != nil {
			rt = opts.Transport
		} else {
			rt = &http.Transport{
				DialContext:           (&net.Dialer{Timeout: opts.DialTimeout}).DialContext,
				ResponseHeaderTimeout: opts.ResponseHeaderTimeout,
				MaxIdleConns:          256,
				MaxIdleConnsPerHost:   256,
				IdleConnTimeout:       90 * time.Second,
			}
		}
		// No flat Client.Timeout: the per-attempt context carries the
		// deadline, so a retried call is not charged for prior attempts.
		hc = &http.Client{Transport: rt}
	}
	c := &Client{
		base: base,
		http: hc,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.RetrySeed)),
	}
	c.breaker.threshold = opts.BreakerThreshold
	c.breaker.cooldown = opts.BreakerCooldown
	// The breaker's half-open horizon is jittered from its own seeded
	// stream, so a fleet of clients tripped by the same outage does not
	// probe the recovering server in lockstep.
	c.breaker.rng = rand.New(rand.NewSource(opts.RetrySeed + 0x9E3779B9))
	return c, nil
}

// Counts returns the attempt-level accounting so far.
func (c *Client) Counts() Counts {
	opens, probes := c.breaker.counts()
	return Counts{
		Requests:         c.requests.Load(),
		Attempts:         c.attempts.Load(),
		Retries:          c.retries.Load(),
		Shed:             c.shed.Load(),
		NetErrors:        c.netErrors.Load(),
		ServerErrors:     c.serverErrors.Load(),
		BreakerFastFails: c.breakerFastFails.Load(),
		BreakerOpens:     opens,
		BreakerProbes:    probes,
	}
}

// BreakerOpen reports whether the circuit breaker is currently inside
// its cooldown — rejecting calls without probing. Cluster routing uses
// it to steer reads away from a tripped node.
func (c *Client) BreakerOpen() bool {
	b := &c.breaker
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open && time.Now().Before(b.openUntil)
}

// Response is the raw outcome of Do: the status and the fully read
// body. Helpers decode it; load drivers discard it.
type Response struct {
	Status int
	Body   []byte

	// JournalSeq is the server's X-Journal-Seq header: the durable
	// sequence number the response was answered at. HasJournalSeq
	// distinguishes "seq 0" from "header absent" (a pre-replication
	// server). Cluster reads bound staleness with it.
	JournalSeq    uint64
	HasJournalSeq bool

	// Epoch is the server's X-Cluster-Epoch header — the cluster epoch
	// the response was answered under. Cluster clients track the
	// highest epoch observed and stamp it on writes, which is what lets
	// a zombie ex-primary reject them as stale.
	Epoch    uint64
	HasEpoch bool

	// ErrorCode is the machine-readable code of a non-2xx body, if any.
	ErrorCode string

	retryAfter string // Retry-After header, if any
}

// maxResponseBytes bounds a response body read, mirroring the server's
// own request cap.
const maxResponseBytes = 32 << 20

// Do performs one API call with the client's full retry policy.
// idempotent marks calls safe to replay after an ambiguous failure
// (the request may have reached the server): all queries are, mutating
// POSTs are not. Non-idempotent calls still retry 429s (shed before
// any work) and dial failures (never sent).
//
// A 2xx returns (resp, nil); any other final status returns the
// *APIError alongside the response.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, idempotent bool) (*Response, error) {
	return c.DoWithHeader(ctx, method, path, body, idempotent, nil)
}

// DoWithHeader is Do with extra request headers applied to every
// attempt — the hook cluster clients use to stamp X-Cluster-Epoch on
// writes.
func (c *Client) DoWithHeader(ctx context.Context, method, path string, body []byte, idempotent bool, hdr http.Header) (*Response, error) {
	c.requests.Add(1)
	var lastErr error
	maxAttempts := 1 + c.opts.MaxRetries
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		if !c.breaker.allow(time.Now()) {
			c.breakerFastFails.Add(1)
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last error: %v)", ErrCircuitOpen, lastErr)
			}
			return nil, ErrCircuitOpen
		}

		resp, retryable, err := c.attempt(ctx, method, path, body, idempotent, hdr)
		if err == nil && resp.Status < 300 {
			return resp, nil
		}
		var delay time.Duration
		if err != nil {
			lastErr = err
		} else {
			apiErr := &APIError{Status: resp.Status, Message: errorMessage(resp.Body), Code: resp.ErrorCode}
			lastErr = apiErr
			if !retryable || attempt == maxAttempts-1 {
				return resp, apiErr
			}
			delay = c.retryAfterHint(resp)
		}
		if !retryable || attempt == maxAttempts-1 {
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err := c.sleep(ctx, c.backoff(attempt, delay)); err != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// attempt runs one HTTP exchange and classifies the outcome.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, idempotent bool, hdr http.Header) (*Response, bool, error) {
	actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return nil, false, fmt.Errorf("meshclient: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	c.attempts.Add(1)

	httpResp, err := c.http.Do(req)
	if err != nil {
		c.netErrors.Add(1)
		c.breaker.onFailure(time.Now())
		// If the caller's own context ended, stop retrying regardless.
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, idempotent || isDialError(err), fmt.Errorf("meshclient: %w", err)
	}
	data, rerr := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes))
	io.Copy(io.Discard, httpResp.Body) // drain any chaos-truncated remainder
	httpResp.Body.Close()
	if rerr != nil {
		// Mid-body reset: the exchange reached the server, so only
		// idempotent calls may replay it.
		c.netErrors.Add(1)
		c.breaker.onFailure(time.Now())
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, idempotent, fmt.Errorf("meshclient: read response: %w", rerr)
	}

	resp := &Response{Status: httpResp.StatusCode, Body: data}
	resp.retryAfter = httpResp.Header.Get("Retry-After")
	if v := httpResp.Header.Get("X-Journal-Seq"); v != "" {
		if seq, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			resp.JournalSeq, resp.HasJournalSeq = seq, true
		}
	}
	if v := httpResp.Header.Get("X-Cluster-Epoch"); v != "" {
		if e, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			resp.Epoch, resp.HasEpoch = e, true
		}
	}
	if resp.Status >= 300 {
		resp.ErrorCode = errorCode(data)
	}
	switch {
	case resp.Status < 300:
		c.breaker.onSuccess()
		return resp, false, nil
	case resp.Status == http.StatusTooManyRequests:
		// Shed before any work: always retryable, and proof the server
		// is alive — not a breaker failure.
		c.shed.Add(1)
		c.breaker.onSuccess()
		return resp, true, nil
	case resp.Status >= 500:
		c.serverErrors.Add(1)
		c.breaker.onFailure(time.Now())
		return resp, idempotent, nil
	default:
		// A plain 4xx is a correct answer to a bad request.
		c.breaker.onSuccess()
		return resp, false, nil
	}
}

// retryAfterHint parses the response's Retry-After seconds, capped by
// RetryAfterCap; zero when absent or malformed.
func (c *Client) retryAfterHint(resp *Response) time.Duration {
	if resp == nil || resp.retryAfter == "" {
		return 0
	}
	secs, err := strconv.Atoi(resp.retryAfter)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > c.opts.RetryAfterCap {
		d = c.opts.RetryAfterCap
	}
	return d
}

// backoff computes the delay before retry number attempt+1. A server
// Retry-After hint takes precedence over the exponential schedule
// outright — the server knows its own queue depth, so when it says
// "come back in 1s" the client neither returns early (hammering a
// shedding server) nor pads the hint with schedule it has outgrown.
// Hintless failures use the blind schedule. Both get up to 50% jitter
// so a shed fleet does not retry in lockstep.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := hint
	if d <= 0 {
		d = c.opts.BaseBackoff << uint(attempt)
		if d > c.opts.MaxBackoff || d <= 0 {
			d = c.opts.MaxBackoff
		}
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + jitter
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDialError reports whether the exchange failed before the request
// could have reached the server, making even non-idempotent calls safe
// to retry.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// errorMessage extracts the server's {"error": ...} body, falling back
// to the raw text.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// errorCode extracts the server's {"code": ...} discriminator, if any.
func errorCode(body []byte) string {
	var e struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &e); err == nil {
		return e.Code
	}
	return ""
}

// breaker is a consecutive-failure circuit breaker: threshold failures
// in a row open it for cooldown (plus up to 50% jitter, so tripped
// clients do not probe in lockstep), after which a single half-open
// probe decides whether to close it again.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	rng       *rand.Rand // jitters the reopen horizon; nil disables jitter
	failures  int
	open      bool
	openUntil time.Time
	probing   bool
	opens     uint64
	probes    uint64
}

func (b *breaker) allow(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false // one probe at a time
	}
	b.probing = true
	b.probes++
	return true
}

func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.failures = 0
	b.open = false
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) onFailure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	wasProbe := b.probing
	b.failures++
	b.probing = false
	if b.failures >= b.threshold {
		if !b.open || wasProbe {
			b.opens++ // a fresh trip or a failed probe re-arming the cooldown
		}
		b.open = true
		d := b.cooldown
		if b.rng != nil {
			d += time.Duration(b.rng.Int63n(int64(b.cooldown)/2 + 1))
		}
		b.openUntil = now.Add(d)
	}
	b.mu.Unlock()
}

func (b *breaker) counts() (opens, probes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.probes
}
