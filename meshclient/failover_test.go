package meshclient

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffPrefersRetryAfterHint pins the precedence rule: a server
// hint replaces the exponential schedule outright — it is not merely a
// floor under it.
func TestBackoffPrefersRetryAfterHint(t *testing.T) {
	opts := fastOpts("http://localhost:1")
	opts.BaseBackoff = 4 * time.Second
	opts.MaxBackoff = 8 * time.Second
	c := newClient(t, opts)

	// Hinted: the 1s hint governs even though the schedule says 4s.
	if d := c.backoff(0, time.Second); d < time.Second || d > 1500*time.Millisecond {
		t.Fatalf("backoff with 1s hint = %v, want hint + up to 50%% jitter", d)
	}
	// Hintless: the schedule governs.
	if d := c.backoff(0, 0); d < 4*time.Second {
		t.Fatalf("hintless backoff = %v, want schedule (>= 4s)", d)
	}
}

// sheddingStub answers its first n requests with 429 + Retry-After,
// then succeeds.
type sheddingStub struct {
	ts    *httptest.Server
	sheds atomic.Int64
	left  atomic.Int64
}

func newSheddingStub(t *testing.T, sheds int, retryAfter string) *sheddingStub {
	t.Helper()
	s := &sheddingStub{}
	s.left.Store(int64(sheds))
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.left.Add(-1) >= 0 {
			s.sheds.Add(1)
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shedding"}`)
			return
		}
		w.Header().Set("X-Journal-Seq", "1")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{}`)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

// TestRetryAfterGovernsSheddingRetry proves the end-to-end behavior
// against a shedding stub: with a schedule far above the hint, the old
// max(hint, schedule) rule would wait 3s+; honoring the hint retries
// after ~1s.
func TestRetryAfterGovernsSheddingRetry(t *testing.T) {
	stub := newSheddingStub(t, 1, "1")
	opts := fastOpts(stub.ts.URL)
	opts.MaxRetries = 2
	opts.BaseBackoff = 3 * time.Second
	opts.MaxBackoff = 3 * time.Second
	opts.RetryAfterCap = 5 * time.Second
	c := newClient(t, opts)

	start := time.Now()
	resp, err := c.Do(context.Background(), "GET", "/q", nil, true)
	if err != nil || resp.Status != 200 {
		t.Fatalf("Do = %v/%v, want eventual 200", resp, err)
	}
	elapsed := time.Since(start)
	if elapsed < time.Second {
		t.Fatalf("retried after %v, before the 1s Retry-After hint", elapsed)
	}
	if elapsed >= 2500*time.Millisecond {
		t.Fatalf("retried after %v: hint did not take precedence over the 3s schedule", elapsed)
	}
	if stub.sheds.Load() != 1 {
		t.Fatalf("sheds = %d, want 1", stub.sheds.Load())
	}
}

// TestClusterWriteHonorsRetryAfter covers the same precedence through
// the cluster client's write path.
func TestClusterWriteHonorsRetryAfter(t *testing.T) {
	stub := newSheddingStub(t, 1, "1")
	opts := ClusterOptions{Primary: stub.ts.URL, Node: fastOpts("")}
	opts.Node.MaxRetries = 2
	opts.Node.BaseBackoff = 3 * time.Second
	opts.Node.MaxBackoff = 3 * time.Second
	opts.Node.RetryAfterCap = 5 * time.Second
	c := newCluster(t, opts)

	start := time.Now()
	if _, err := c.DoWrite(context.Background(), "POST", "/w", nil, false); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < time.Second || elapsed >= 2500*time.Millisecond {
		t.Fatalf("cluster write retried after %v, want ~1s (the hint, not the 3s schedule)", elapsed)
	}
}

// failoverNode scripts one cluster member for write-failover tests: a
// role it reports on GET /replication and a canned answer for writes.
type failoverNode struct {
	ts        *httptest.Server
	role      atomic.Pointer[string]
	nodeID    string
	epoch     atomic.Uint64
	seq       atomic.Uint64
	writes    atomic.Int64
	lastEpoch atomic.Pointer[string] // last X-Cluster-Epoch request header seen
}

func newFailoverNode(t *testing.T, nodeID, role string, epoch, seq uint64) *failoverNode {
	t.Helper()
	n := &failoverNode{nodeID: nodeID}
	n.role.Store(&role)
	n.epoch.Store(epoch)
	n.seq.Store(seq)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/replication" {
			json.NewEncoder(w).Encode(map[string]any{
				"role": *n.role.Load(), "node_id": n.nodeID, "epoch": n.epoch.Load(),
			})
			return
		}
		w.Header().Set("X-Journal-Seq", fmt.Sprint(n.seq.Load()))
		w.Header().Set("X-Cluster-Epoch", fmt.Sprint(n.epoch.Load()))
		if r.Method != http.MethodGet {
			n.writes.Add(1)
			h := r.Header.Get("X-Cluster-Epoch")
			n.lastEpoch.Store(&h)
			if *n.role.Load() != "primary" {
				w.WriteHeader(http.StatusForbidden)
				fmt.Fprint(w, `{"error":"node is a read-only replica","code":"read_only"}`)
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{}`)
	}))
	t.Cleanup(n.ts.Close)
	return n
}

// TestClusterWriteFailsOverToNewPrimary drives the tentpole client
// behavior: a write refused with read_only triggers rediscovery via
// GET /replication, the client follows the highest-epoch primary
// claimant, resends the refused write once, and stamps subsequent
// writes with the observed epoch.
func TestClusterWriteFailsOverToNewPrimary(t *testing.T) {
	demoted := newFailoverNode(t, "a", "replica", 2, 10)
	promoted := newFailoverNode(t, "b", "primary", 2, 10)
	opts := ClusterOptions{Primary: demoted.ts.URL, Replicas: []string{promoted.ts.URL}, Node: fastOpts("")}
	opts.Node.MaxRetries = -1
	c := newCluster(t, opts)
	ctx := context.Background()

	if _, err := c.DoWrite(ctx, "POST", "/v1/mesh", []byte(`{}`), false); err != nil {
		t.Fatalf("write did not fail over: %v", err)
	}
	if got := c.PrimaryAddr(); got != promoted.ts.URL {
		t.Fatalf("primary after failover = %s, want %s", got, promoted.ts.URL)
	}
	if c.Counts().Rediscoveries != 1 {
		t.Fatalf("Rediscoveries = %d, want 1", c.Counts().Rediscoveries)
	}
	if promoted.writes.Load() != 1 || demoted.writes.Load() != 1 {
		t.Fatalf("writes demoted/promoted = %d/%d, want 1/1 (refused once, resent once)",
			demoted.writes.Load(), promoted.writes.Load())
	}
	// The refusal carried epoch 2; the resent write must have been
	// stamped with it, fencing any zombie that hasn't heard.
	if got := promoted.lastEpoch.Load(); got == nil || *got != "2" {
		t.Fatalf("resent write X-Cluster-Epoch = %v, want 2", got)
	}

	// Subsequent writes go straight to the new primary.
	if _, err := c.DoWrite(ctx, "POST", "/v1/mesh", []byte(`{}`), false); err != nil {
		t.Fatal(err)
	}
	if demoted.writes.Load() != 1 {
		t.Fatal("later write still consulted the demoted node")
	}
	if c.Epoch() != 2 {
		t.Fatalf("observed epoch = %d, want 2", c.Epoch())
	}
}

// TestClusterAmbiguousWriteNotResent pins the exactly-once guard: a
// non-idempotent write that failed ambiguously (the node answered
// replication_unconfirmed — it may have applied) is NOT resent after
// rediscovery; the error surfaces instead.
func TestClusterAmbiguousWriteNotResent(t *testing.T) {
	promoted := newFailoverNode(t, "b", "primary", 2, 10)
	ambiguous := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/replication" {
			fmt.Fprint(w, `{"role":"replica","node_id":"a","epoch":1}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"write applied locally but not confirmed","code":"replication_unconfirmed"}`)
	}))
	defer ambiguous.Close()

	opts := ClusterOptions{Primary: ambiguous.URL, Replicas: []string{promoted.ts.URL}, Node: fastOpts("")}
	opts.Node.MaxRetries = -1
	c := newCluster(t, opts)

	_, err := c.DoWrite(context.Background(), "POST", "/v1/mesh", []byte(`{}`), false)
	if err == nil {
		t.Fatal("ambiguous write reported success")
	}
	if promoted.writes.Load() != 0 {
		t.Fatal("ambiguous non-idempotent write was resent — double-apply risk")
	}
	// Rediscovery still happened, so the NEXT write goes to the winner.
	if got := c.PrimaryAddr(); got != promoted.ts.URL {
		t.Fatalf("primary after rediscovery = %s, want %s", got, promoted.ts.URL)
	}
}

// TestClusterEvictsRepeatedlyStaleReplica is the satellite regression:
// a replica that keeps answering stale 404s is dropped from the read
// rotation after EvictThreshold consecutive rejections instead of
// costing every read a wasted round-trip.
func TestClusterEvictsRepeatedlyStaleReplica(t *testing.T) {
	primary := newFakeNode(t, 200, 9, `{}`)
	stale := newFakeNode(t, 404, 1, `{"error":"mesh not found"}`)
	opts := clusterOpts(primary, stale)
	opts.EvictThreshold = 2
	opts.EvictCooldown = time.Hour
	c := newCluster(t, opts)
	ctx := context.Background()

	// Establish a watermark the stale replica can never satisfy.
	if _, err := c.DoWrite(ctx, "POST", "/w", nil, false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := c.DoRead(ctx, "GET", "/v1/mesh/m", nil)
		if err != nil || resp.Status != 200 {
			t.Fatalf("read %d = %v/%v, want the primary's 200", i, resp, err)
		}
	}
	counts := c.Counts()
	if counts.StaleEvictions != 1 {
		t.Fatalf("StaleEvictions = %d, want 1", counts.StaleEvictions)
	}
	if stale.calls.Load() != 2 {
		t.Fatalf("stale replica served %d reads, want exactly EvictThreshold=2 before eviction", stale.calls.Load())
	}
	if counts.EvictSkips != 3 {
		t.Fatalf("EvictSkips = %d, want 3 (the post-eviction reads)", counts.EvictSkips)
	}
	if counts.PrimaryReads != 5 {
		t.Fatalf("PrimaryReads = %d, want all 5", counts.PrimaryReads)
	}
}
