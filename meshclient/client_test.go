package meshclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/metrics"
	"extmesh/internal/serve"
)

// fastOpts returns options tuned for tests: tiny backoffs, no breaker.
func fastOpts(url string) Options {
	return Options{
		BaseURL:          url,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		RetryAfterCap:    10 * time.Millisecond,
		BreakerThreshold: -1,
	}
}

func newClient(t *testing.T, opts Options) *Client {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"saturated"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := newClient(t, fastOpts(ts.URL))
	// Non-idempotent: 429s must still retry (shed before any work).
	resp, err := c.Do(context.Background(), "POST", "/x", []byte(`{}`), false)
	if err != nil {
		t.Fatalf("Do = %v, want success after 429 retries", err)
	}
	if resp.Status != 200 || calls.Load() != 3 {
		t.Fatalf("status=%d calls=%d, want 200 after 3 calls", resp.Status, calls.Load())
	}
	counts := c.Counts()
	if counts.Shed != 2 || counts.Retries != 2 || counts.Requests != 1 {
		t.Errorf("counts = %+v, want Shed=2 Retries=2 Requests=1", counts)
	}
}

func TestServerErrorIdempotencyRules(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"transient"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	// Idempotent: a 500 is retried and the second attempt succeeds.
	c := newClient(t, fastOpts(ts.URL))
	if _, err := c.Do(context.Background(), "POST", "/q", []byte(`{}`), true); err != nil {
		t.Fatalf("idempotent after 500 = %v, want success", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}

	// Non-idempotent: the 500 must surface immediately — the mutation
	// may have applied.
	calls.Store(0)
	c2 := newClient(t, fastOpts(ts.URL))
	_, err := c2.Do(context.Background(), "POST", "/m", []byte(`{}`), false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("non-idempotent 500 = %v, want APIError 500", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of ambiguous mutation)", got)
	}
}

func TestPlain4xxNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad body"}`))
	}))
	defer ts.Close()

	c := newClient(t, fastOpts(ts.URL))
	_, err := c.Do(context.Background(), "POST", "/q", []byte(`{`), true)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Message != "bad body" {
		t.Fatalf("err = %v, want APIError 400 'bad body'", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is a correct answer)", calls.Load())
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	var calls atomic.Int64
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write([]byte(`{}`))
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	opts := fastOpts(ts.URL)
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 20 * time.Millisecond
	opts.MaxRetries = -1 // isolate breaker behavior from retries
	c := newClient(t, opts)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Do(context.Background(), "GET", "/q", nil, true); err == nil {
			t.Fatal("expected failure")
		}
	}
	// While open: fast-fail without touching the server.
	before := calls.Load()
	_, err := c.Do(context.Background(), "GET", "/q", nil, true)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still reached the server")
	}
	if c.Counts().BreakerFastFails == 0 {
		t.Error("BreakerFastFails not counted")
	}

	// After cooldown (plus up to 50% jitter) the half-open probe goes
	// through and, with the server healthy again, closes the breaker.
	healthy.Store(true)
	time.Sleep(35 * time.Millisecond)
	if _, err := c.Do(context.Background(), "GET", "/q", nil, true); err != nil {
		t.Fatalf("probe after cooldown = %v, want success", err)
	}
	if _, err := c.Do(context.Background(), "GET", "/q", nil, true); err != nil {
		t.Fatalf("post-probe call = %v, want closed breaker", err)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	opts := fastOpts(ts.URL)
	opts.MaxRetries = 1000
	opts.BaseBackoff = 10 * time.Millisecond
	c := newClient(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, "GET", "/q", nil, true)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestTypedEndpointsAgainstRealServer drives every typed method against
// a live serve.Server and cross-checks answers with the library
// directly — the client must be a transparent view of the service.
func TestTypedEndpointsAgainstRealServer(t *testing.T) {
	s := serve.New(serve.Options{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := newClient(t, fastOpts(ts.URL))
	ctx := context.Background()

	info, err := c.CreateMesh(ctx, "m", 16, 16, []extmesh.Coord{{X: 4, Y: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Width != 16 || info.Faults != 1 {
		t.Fatalf("create info = %+v", info)
	}
	if _, err := c.CreateMesh(ctx, "m", 8, 8, nil); err == nil {
		t.Fatal("duplicate create accepted")
	}

	// Direct-library oracle over the same mesh.
	d := s.Meshes().Get("m")
	n, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	src, dst := extmesh.Coord{X: 0, Y: 0}, extmesh.Coord{X: 15, Y: 15}
	rr, err := c.Route(ctx, "m", Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	wantPath, err := n.Route(src, dst, extmesh.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Hops != len(wantPath)-1 || len(rr.Path) != len(wantPath) {
		t.Errorf("Route hops=%d len=%d, want %d/%d", rr.Hops, len(rr.Path), len(wantPath)-1, len(wantPath))
	}

	safe, err := c.Safe(ctx, "m", Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	if want := n.Safe(src, dst, extmesh.Blocks); safe != want {
		t.Errorf("Safe = %v, want %v", safe, want)
	}

	exists, err := c.HasMinimalPath(ctx, "m", Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	if want := n.HasMinimalPath(src, dst); exists != want {
		t.Errorf("HasMinimalPath = %v, want %v", exists, want)
	}

	ens, err := c.Ensure(ctx, "m", Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	wantA := n.Ensure(src, dst, extmesh.Blocks, extmesh.DefaultStrategy())
	if ens.Verdict != wantA.Verdict.String() {
		t.Errorf("Ensure verdict = %q, want %q", ens.Verdict, wantA.Verdict)
	}

	ra, err := c.RouteAssured(ctx, "m", Query{Src: src, Dst: dst})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Verdict == "" || ra.Hops < 0 {
		t.Errorf("RouteAssured = %+v", ra)
	}

	pairs := []Pair{{Src: src, Dst: dst}, {Src: dst, Dst: src}}
	batch, err := c.RouteBatch(ctx, "m", pairs, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].Error != "" || batch[0].Hops != len(wantPath)-1 {
		t.Errorf("RouteBatch = %+v", batch)
	}

	dests := []extmesh.Coord{{X: 15, Y: 15}, {X: 4, Y: 4}, {X: 1, Y: 7}}
	hb, err := c.HasMinimalPathBatch(ctx, "m", src, dests)
	if err != nil {
		t.Fatal(err)
	}
	wantHB := n.HasMinimalPathAll(src, dests)
	if len(hb) != len(wantHB) {
		t.Fatalf("HasMinimalPathBatch len = %d, want %d", len(hb), len(wantHB))
	}
	for i := range hb {
		if hb[i] != wantHB[i] {
			t.Errorf("HasMinimalPathBatch[%d] = %v, want %v", i, hb[i], wantHB[i])
		}
	}

	eb, err := c.EnsureBatch(ctx, "m", src, dests[:2], "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eb) != 2 {
		t.Fatalf("EnsureBatch len = %d, want 2", len(eb))
	}

	fr, err := c.ApplyFaults(ctx, "m", FaultsRequest{Fail: []extmesh.Coord{{X: 9, Y: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Applied != 1 || fr.Faults != 2 {
		t.Errorf("ApplyFaults = %+v, want applied=1 faults=2", fr)
	}
	if _, err := c.InjectSpec(ctx, "m", "fail@0:10,10", 10, 1); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != 3 || st.Version != d.Version() {
		t.Errorf("Stats = %+v, want faults=3 version=%d", st, d.Version())
	}

	ms, err := c.GetMesh(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Faults) != 3 || ms.Width != 16 {
		t.Errorf("GetMesh = %+v", ms)
	}

	blob, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadMesh(ctx, "copy", blob); err != nil {
		t.Fatal(err)
	}
	list, err := c.ListMeshes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("ListMeshes = %d entries, want 2", len(list))
	}

	if err := c.DeleteMesh(ctx, "copy"); err != nil {
		t.Fatal(err)
	}
	var apiErr *APIError
	if _, err := c.GetMesh(ctx, "copy"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("GetMesh after delete = %v, want 404", err)
	}

	ready, err := c.Ready(ctx)
	if err != nil || !ready {
		t.Fatalf("Ready = %v %v, want true", ready, err)
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRetrySeedDeterminism(t *testing.T) {
	backoffs := func(seed int64) []time.Duration {
		c := newClient(t, Options{BaseURL: "http://localhost:1", RetrySeed: seed})
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, c.backoff(i, 0))
		}
		return out
	}
	a, b := backoffs(7), backoffs(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
