package meshclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"extmesh"
)

// ClusterOptions configures a ClusterClient over one primary and any
// number of read replicas.
type ClusterOptions struct {
	// Primary is the primary's base URL: every write goes here, and
	// reads fall back here when no replica can answer acceptably.
	Primary string
	// Replicas are the read replicas' base URLs.
	Replicas []string
	// MaxStalenessRecords bounds how far (in journal records) a replica
	// answer may lag the newest sequence number this client has
	// observed. 0 — the default — demands read-your-writes: a replica
	// must have applied everything this client has seen acknowledged.
	MaxStalenessRecords uint64
	// Node templates each per-node client; its BaseURL is ignored.
	Node Options
}

// ClusterCounts is the cluster-level accounting: how reads spread,
// failed over, and fell back.
type ClusterCounts struct {
	Reads        uint64 // read calls into the cluster client
	Writes       uint64 // write calls (all routed to the primary)
	PrimaryReads uint64 // reads ultimately answered by the primary
	Failovers    uint64 // node switches after an error mid-read
	StaleRejects uint64 // replica answers rejected for lagging the watermark
	BreakerSkips uint64 // replicas skipped up front: breaker open
}

// ClusterClient spreads reads across replicas round-robin, skips and
// fails over tripped or erroring nodes, bounds read staleness via the
// X-Journal-Seq watermark, and routes every write to the primary.
//
// The watermark is the newest journal sequence number observed on any
// accepted response (writes and reads alike), so the guarantee is
// session-monotonic: once this client has seen state at sequence S, it
// never accepts an answer older than S - MaxStalenessRecords.
type ClusterClient struct {
	primary  *Client
	replicas []*Client
	addrs    []string
	opts     ClusterOptions

	next      atomic.Uint64 // round-robin cursor
	watermark atomic.Uint64

	reads, writes, primaryReads       atomic.Uint64
	failovers, staleRejects, breakers atomic.Uint64
}

// NewCluster assembles a cluster client.
func NewCluster(opts ClusterOptions) (*ClusterClient, error) {
	if opts.Primary == "" {
		return nil, fmt.Errorf("meshclient: cluster needs a primary URL")
	}
	mk := func(base string) (*Client, error) {
		o := opts.Node
		o.BaseURL = base
		return New(o)
	}
	primary, err := mk(opts.Primary)
	if err != nil {
		return nil, err
	}
	c := &ClusterClient{primary: primary, opts: opts}
	for _, addr := range opts.Replicas {
		r, err := mk(addr)
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, r)
		c.addrs = append(c.addrs, addr)
	}
	return c, nil
}

// Primary exposes the primary's node client (for counts inspection).
func (c *ClusterClient) Primary() *Client { return c.primary }

// ReplicaClients exposes the per-replica node clients in option order.
func (c *ClusterClient) ReplicaClients() []*Client { return c.replicas }

// Counts returns the cluster-level accounting so far.
func (c *ClusterClient) Counts() ClusterCounts {
	return ClusterCounts{
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		PrimaryReads: c.primaryReads.Load(),
		Failovers:    c.failovers.Load(),
		StaleRejects: c.staleRejects.Load(),
		BreakerSkips: c.breakers.Load(),
	}
}

// Watermark returns the newest journal sequence number this client has
// observed on an accepted response.
func (c *ClusterClient) Watermark() uint64 { return c.watermark.Load() }

// observe raises the watermark to seq (monotonic).
func (c *ClusterClient) observe(resp *Response) {
	if resp == nil || !resp.HasJournalSeq {
		return
	}
	for {
		cur := c.watermark.Load()
		if resp.JournalSeq <= cur || c.watermark.CompareAndSwap(cur, resp.JournalSeq) {
			return
		}
	}
}

// fresh reports whether a replica response satisfies the staleness
// bound. Responses without the header (pre-replication servers) are
// accepted — there is no watermark protocol to hold them to.
func (c *ClusterClient) fresh(resp *Response) bool {
	if resp == nil || !resp.HasJournalSeq {
		return true
	}
	return resp.JournalSeq+c.opts.MaxStalenessRecords >= c.watermark.Load()
}

// DoWrite performs a mutation against the primary. idempotent follows
// Client.Do's contract. The response's sequence number becomes the
// cluster watermark, so subsequent reads observe this write.
func (c *ClusterClient) DoWrite(ctx context.Context, method, path string, body []byte, idempotent bool) (*Response, error) {
	c.writes.Add(1)
	resp, err := c.primary.Do(ctx, method, path, body, idempotent)
	if err == nil {
		c.observe(resp)
	}
	return resp, err
}

// DoRead performs a read, trying replicas round-robin and falling back
// to the primary. A replica answer is accepted only when it is fresh
// (within MaxStalenessRecords of the watermark); stale answers —
// including stale 404s, which may simply not have seen a recent create
// — fail over to the next node. Transport errors, 5xx and open
// breakers fail over likewise. 4xx answers from a fresh node are
// genuine and returned as-is.
func (c *ClusterClient) DoRead(ctx context.Context, method, path string, body []byte) (*Response, error) {
	c.reads.Add(1)
	n := len(c.replicas)
	start := int(c.next.Add(1) - 1)
	var lastResp *Response
	var lastErr error
	tried := false
	for i := 0; i < n; i++ {
		node := c.replicas[(start+i)%n]
		if node.BreakerOpen() {
			c.breakers.Add(1)
			continue
		}
		if tried {
			c.failovers.Add(1)
		}
		tried = true
		resp, err := node.Do(ctx, method, path, body, true)
		if ctx.Err() != nil {
			return resp, err
		}
		switch {
		case err == nil:
			if c.fresh(resp) {
				c.observe(resp)
				return resp, nil
			}
			c.staleRejects.Add(1)
			lastResp, lastErr = resp, nil
		case resp != nil && resp.Status < 500 && resp.Status != http.StatusTooManyRequests:
			// A definite 4xx — but a replica that has not caught up
			// answers 404 for meshes it has never seen, so a stale 4xx
			// fails over instead of being trusted.
			if c.fresh(resp) {
				c.observe(resp)
				return resp, err
			}
			c.staleRejects.Add(1)
			lastResp, lastErr = resp, err
		default:
			lastResp, lastErr = resp, err
		}
	}
	if tried {
		c.failovers.Add(1)
	}
	c.primaryReads.Add(1)
	resp, err := c.primary.Do(ctx, method, path, body, true)
	if err == nil || resp != nil {
		c.observe(resp)
		return resp, err
	}
	// The primary is down too; surface the most informative failure.
	if lastErr != nil || lastResp != nil {
		return lastResp, lastErr
	}
	return resp, err
}

// call mirrors Client.call over the cluster read/write router.
func (c *ClusterClient) call(ctx context.Context, write bool, method, path string, req any, idempotent bool, out any) error {
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			return fmt.Errorf("meshclient: encode request: %w", err)
		}
	}
	var resp *Response
	var err error
	if write {
		resp, err = c.DoWrite(ctx, method, path, body, idempotent)
	} else {
		resp, err = c.DoRead(ctx, method, path, body)
	}
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(resp.Body, out); err != nil {
		return fmt.Errorf("meshclient: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// --- writes (primary only) -------------------------------------------

// CreateMesh registers a named mesh on the primary.
func (c *ClusterClient) CreateMesh(ctx context.Context, name string, width, height int, faults []extmesh.Coord) (*MeshInfo, error) {
	req := map[string]any{"name": name, "width": width, "height": height, "faults": faults}
	var info MeshInfo
	if err := c.call(ctx, true, http.MethodPost, "/v1/mesh", req, false, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UploadMesh creates or replaces a mesh on the primary.
func (c *ClusterClient) UploadMesh(ctx context.Context, name string, blob []byte) (*MeshInfo, error) {
	resp, err := c.DoWrite(ctx, http.MethodPut, meshPath(name, ""), blob, true)
	if err != nil {
		return nil, err
	}
	var info MeshInfo
	if err := json.Unmarshal(resp.Body, &info); err != nil {
		return nil, fmt.Errorf("meshclient: decode upload response: %w", err)
	}
	return &info, nil
}

// DeleteMesh removes a mesh via the primary.
func (c *ClusterClient) DeleteMesh(ctx context.Context, name string) error {
	return c.call(ctx, true, http.MethodDelete, meshPath(name, ""), nil, true, nil)
}

// ApplyFaults applies a fault mutation on the primary.
func (c *ClusterClient) ApplyFaults(ctx context.Context, mesh string, req FaultsRequest) (*FaultsResult, error) {
	var out FaultsResult
	if err := c.call(ctx, true, http.MethodPost, meshPath(mesh, "/faults"), req, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- reads (replicas, primary fallback) ------------------------------

// GetMesh exports a mesh.
func (c *ClusterClient) GetMesh(ctx context.Context, name string) (*MeshState, error) {
	var st MeshState
	if err := c.call(ctx, false, http.MethodGet, meshPath(name, ""), nil, true, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ListMeshes returns the registered mesh summaries.
func (c *ClusterClient) ListMeshes(ctx context.Context) ([]MeshInfo, error) {
	var out struct {
		Meshes []MeshInfo `json:"meshes"`
	}
	if err := c.call(ctx, false, http.MethodGet, "/v1/mesh", nil, true, &out); err != nil {
		return nil, err
	}
	return out.Meshes, nil
}

// Route asks for a Wu-protocol route.
func (c *ClusterClient) Route(ctx context.Context, mesh string, q Query) (*RouteResult, error) {
	var out RouteResult
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/route"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Safe evaluates the paper's Theorem-1 sufficient condition.
func (c *ClusterClient) Safe(ctx context.Context, mesh string, q Query) (bool, error) {
	var out struct {
		Safe bool `json:"safe"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/safe"), q, true, &out); err != nil {
		return false, err
	}
	return out.Safe, nil
}

// Ensure runs the strategy cascade and returns its verdict.
func (c *ClusterClient) Ensure(ctx context.Context, mesh string, q Query) (*Assurance, error) {
	var out Assurance
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/ensure"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// HasMinimalPath asks the exact existence question.
func (c *ClusterClient) HasMinimalPath(ctx context.Context, mesh string, q Query) (bool, error) {
	var out struct {
		Exists bool `json:"exists"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/has-minimal-path"), q, true, &out); err != nil {
		return false, err
	}
	return out.Exists, nil
}

// RouteBatch routes many pairs in one request.
func (c *ClusterClient) RouteBatch(ctx context.Context, mesh string, pairs []Pair, model string, omitPaths bool) ([]BatchRouteResult, error) {
	req := map[string]any{"pairs": pairs, "model": model, "omit_paths": omitPaths}
	var out struct {
		Results []BatchRouteResult `json:"results"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/route/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// HasMinimalPathBatch answers existence for many destinations.
func (c *ClusterClient) HasMinimalPathBatch(ctx context.Context, mesh string, src extmesh.Coord, dests []extmesh.Coord) ([]bool, error) {
	req := map[string]any{"src": src, "dests": dests}
	var out struct {
		Results []bool `json:"results"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/has-minimal-path/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Ready reports whether the primary has finished recovery.
func (c *ClusterClient) Ready(ctx context.Context) (bool, error) {
	return c.primary.Ready(ctx)
}

// IsNotFound reports whether err is the server's 404 answer.
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}
