package meshclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"extmesh"
)

// ClusterOptions configures a ClusterClient over one primary and any
// number of read replicas.
type ClusterOptions struct {
	// Primary is the base URL of the node believed primary at startup:
	// writes start here, and reads fall back here when no replica can
	// answer acceptably. After a failover the client rediscovers the
	// new primary among all configured nodes on its own.
	Primary string
	// Replicas are the read replicas' base URLs.
	Replicas []string
	// MaxStalenessRecords bounds how far (in journal records) a replica
	// answer may lag the newest sequence number this client has
	// observed. 0 — the default — demands read-your-writes: a replica
	// must have applied everything this client has seen acknowledged.
	MaxStalenessRecords uint64
	// EvictThreshold is how many consecutive stale rejections a replica
	// may accumulate before it is dropped from the read rotation for
	// EvictCooldown — a replica that lags every probe is wasting a
	// round-trip per read. 0 selects 3; negative disables eviction.
	EvictThreshold int
	// EvictCooldown is how long an evicted replica sits out of the
	// rotation; 0 selects 2s.
	EvictCooldown time.Duration
	// Node templates each per-node client; its BaseURL is ignored.
	Node Options
}

// ClusterCounts is the cluster-level accounting: how reads spread,
// failed over, and fell back, and how writes chased the primary.
type ClusterCounts struct {
	Reads          uint64 // read calls into the cluster client
	Writes         uint64 // write calls (routed to the current primary)
	PrimaryReads   uint64 // reads ultimately answered by the primary
	Failovers      uint64 // node switches after an error mid-read
	StaleRejects   uint64 // replica answers rejected for lagging the watermark
	BreakerSkips   uint64 // replicas skipped up front: breaker open
	EvictSkips     uint64 // replicas skipped up front: evicted for staleness
	StaleEvictions uint64 // replicas evicted after EvictThreshold stale answers
	Rediscoveries  uint64 // primary re-elections this client followed
}

// clusterNode is one configured node: its client plus the staleness
// accounting that drives read-rotation eviction.
type clusterNode struct {
	client *Client
	addr   string

	staleStreak  atomic.Int64
	evictedUntil atomic.Int64 // unixnano; 0 = in rotation
}

func (n *clusterNode) evicted(now time.Time) bool {
	return now.UnixNano() < n.evictedUntil.Load()
}

// ClusterClient spreads reads across replicas round-robin, skips and
// fails over tripped, evicted or erroring nodes, bounds read staleness
// via the X-Journal-Seq watermark, and routes every write to the
// current primary.
//
// The watermark is the newest journal sequence number observed on any
// accepted response (writes and reads alike), so the guarantee is
// session-monotonic: once this client has seen state at sequence S, it
// never accepts an answer older than S - MaxStalenessRecords.
//
// Failover-aware writes: the client stamps every write with the highest
// cluster epoch it has observed (X-Cluster-Epoch), so a zombie
// ex-primary refuses it instead of diverging. When a write is refused —
// read_only, fenced, stale_epoch — or the primary is unreachable, the
// client probes every configured node's GET /replication, follows the
// strongest primary claimant (highest epoch, then node ID), and resends
// the write once if the original failure guarantees it never applied.
type ClusterClient struct {
	nodes      []*clusterNode // [0] = configured primary, then replicas
	primaryIdx atomic.Int64
	opts       ClusterOptions

	next      atomic.Uint64 // round-robin cursor
	watermark atomic.Uint64
	epoch     atomic.Uint64

	reads, writes, primaryReads       atomic.Uint64
	failovers, staleRejects, breakers atomic.Uint64
	evictSkips, staleEvictions        atomic.Uint64
	rediscoveries                     atomic.Uint64
}

// NewCluster assembles a cluster client.
func NewCluster(opts ClusterOptions) (*ClusterClient, error) {
	if opts.Primary == "" {
		return nil, fmt.Errorf("meshclient: cluster needs a primary URL")
	}
	if opts.EvictThreshold == 0 {
		opts.EvictThreshold = 3
	}
	if opts.EvictCooldown <= 0 {
		opts.EvictCooldown = 2 * time.Second
	}
	c := &ClusterClient{opts: opts}
	for _, addr := range append([]string{opts.Primary}, opts.Replicas...) {
		o := opts.Node
		o.BaseURL = addr
		cl, err := New(o)
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &clusterNode{client: cl, addr: addr})
	}
	return c, nil
}

// Primary exposes the current primary's node client. The identity
// changes when rediscovery follows a failover.
func (c *ClusterClient) Primary() *Client { return c.primaryNode().client }

// PrimaryAddr returns the base URL of the node currently treated as
// primary.
func (c *ClusterClient) PrimaryAddr() string { return c.primaryNode().addr }

func (c *ClusterClient) primaryNode() *clusterNode {
	return c.nodes[int(c.primaryIdx.Load())%len(c.nodes)]
}

// ReplicaClients exposes the per-replica node clients in option order
// (the initially configured replicas, regardless of later failovers).
func (c *ClusterClient) ReplicaClients() []*Client {
	out := make([]*Client, 0, len(c.nodes)-1)
	for _, n := range c.nodes[1:] {
		out = append(out, n.client)
	}
	return out
}

// Counts returns the cluster-level accounting so far.
func (c *ClusterClient) Counts() ClusterCounts {
	return ClusterCounts{
		Reads:          c.reads.Load(),
		Writes:         c.writes.Load(),
		PrimaryReads:   c.primaryReads.Load(),
		Failovers:      c.failovers.Load(),
		StaleRejects:   c.staleRejects.Load(),
		BreakerSkips:   c.breakers.Load(),
		EvictSkips:     c.evictSkips.Load(),
		StaleEvictions: c.staleEvictions.Load(),
		Rediscoveries:  c.rediscoveries.Load(),
	}
}

// Watermark returns the newest journal sequence number this client has
// observed on an accepted response.
func (c *ClusterClient) Watermark() uint64 { return c.watermark.Load() }

// Epoch returns the highest cluster epoch this client has observed.
func (c *ClusterClient) Epoch() uint64 { return c.epoch.Load() }

// observe raises the watermark and epoch to the response's (monotonic).
func (c *ClusterClient) observe(resp *Response) {
	if resp == nil {
		return
	}
	if resp.HasJournalSeq {
		raise(&c.watermark, resp.JournalSeq)
	}
	if resp.HasEpoch {
		raise(&c.epoch, resp.Epoch)
	}
}

func raise(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// fresh reports whether a replica response satisfies the staleness
// bound. Responses without the header (pre-replication servers) are
// accepted — there is no watermark protocol to hold them to.
func (c *ClusterClient) fresh(resp *Response) bool {
	if resp == nil || !resp.HasJournalSeq {
		return true
	}
	return resp.JournalSeq+c.opts.MaxStalenessRecords >= c.watermark.Load()
}

// noteStale charges node with one stale answer; EvictThreshold in a
// row drop it from the read rotation for EvictCooldown.
func (c *ClusterClient) noteStale(node *clusterNode) {
	c.staleRejects.Add(1)
	if c.opts.EvictThreshold < 0 {
		return
	}
	if node.staleStreak.Add(1) >= int64(c.opts.EvictThreshold) {
		node.staleStreak.Store(0)
		node.evictedUntil.Store(time.Now().Add(c.opts.EvictCooldown).UnixNano())
		c.staleEvictions.Add(1)
	}
}

// DoWrite performs a mutation against the current primary, stamped with
// the client's observed epoch. idempotent follows Client.Do's contract.
// On a failover-class refusal or an unreachable primary it rediscovers
// the primary and — only when the original failure guarantees the write
// never applied (a typed refusal, a dial failure, or any failure of an
// idempotent call) — resends once. The response's sequence number
// becomes the cluster watermark, so subsequent reads observe this write.
func (c *ClusterClient) DoWrite(ctx context.Context, method, path string, body []byte, idempotent bool) (*Response, error) {
	c.writes.Add(1)
	resp, err := c.writeOnce(ctx, method, path, body, idempotent)
	if err == nil {
		return resp, nil
	}
	if ctx.Err() != nil || !writeNeedsRediscovery(resp, err) {
		return resp, err
	}
	if !c.Rediscover(ctx) || !writeSafeToResend(resp, err, idempotent) {
		return resp, err
	}
	return c.writeOnce(ctx, method, path, body, idempotent)
}

func (c *ClusterClient) writeOnce(ctx context.Context, method, path string, body []byte, idempotent bool) (*Response, error) {
	var hdr http.Header
	if e := c.epoch.Load(); e > 0 {
		hdr = http.Header{"X-Cluster-Epoch": []string{fmt.Sprintf("%d", e)}}
	}
	resp, err := c.primaryNode().client.DoWithHeader(ctx, method, path, body, idempotent, hdr)
	c.observe(resp) // even refusals carry the node's seq and epoch
	return resp, err
}

// writeNeedsRediscovery classifies a failed write: did it fail in a way
// that suggests this node is no longer the primary?
func writeNeedsRediscovery(resp *Response, err error) bool {
	if resp == nil {
		return true // transport failure or open breaker: probe the others
	}
	switch resp.ErrorCode {
	case "read_only", "fenced", "stale_epoch", "replication_unconfirmed":
		return true
	}
	return resp.Status >= 500
}

// writeSafeToResend reports whether the failed write is guaranteed not
// to have applied on the old primary, making a resend on the new one
// exactly-once safe: typed refusals reject before touching state, dial
// failures never left this host, and idempotent calls replay by
// definition. Everything else (e.g. replication_unconfirmed, a mid-body
// transport error) is ambiguous and surfaces to the caller.
func writeSafeToResend(resp *Response, err error, idempotent bool) bool {
	if idempotent {
		return true
	}
	if resp != nil {
		switch resp.ErrorCode {
		case "read_only", "fenced", "stale_epoch":
			return true
		}
		return false
	}
	return isDialError(err)
}

// replicationInfo is the slice of GET /replication the client needs.
type replicationInfo struct {
	Role   string `json:"role"`
	NodeID string `json:"node_id"`
	Epoch  uint64 `json:"epoch"`
}

// Rediscover probes every configured node's GET /replication and
// follows the strongest primary claimant: highest epoch, node ID
// breaking ties — the same deterministic order the cluster itself
// promotes by. Claimants below the client's observed epoch are ignored
// (a zombie still calling itself primary). Reports whether a primary
// was found.
func (c *ClusterClient) Rediscover(ctx context.Context) bool {
	best := -1
	var bestInfo replicationInfo
	for i, node := range c.nodes {
		resp, err := node.client.Do(ctx, http.MethodGet, "/replication", nil, true)
		if err != nil || resp.Status != http.StatusOK {
			continue
		}
		var info replicationInfo
		if json.Unmarshal(resp.Body, &info) != nil || info.Role != "primary" {
			continue
		}
		if info.Epoch < c.epoch.Load() {
			continue
		}
		if best < 0 || info.Epoch > bestInfo.Epoch ||
			(info.Epoch == bestInfo.Epoch && info.NodeID > bestInfo.NodeID) {
			best, bestInfo = i, info
		}
	}
	if best < 0 {
		return false
	}
	raise(&c.epoch, bestInfo.Epoch)
	if int(c.primaryIdx.Load()) != best {
		c.primaryIdx.Store(int64(best))
		c.rediscoveries.Add(1)
	}
	return true
}

// DoRead performs a read, trying non-primary nodes round-robin and
// falling back to the primary. A replica answer is accepted only when
// it is fresh (within MaxStalenessRecords of the watermark); stale
// answers — including stale 404s, which may simply not have seen a
// recent create — fail over to the next node and count toward the
// replica's eviction streak. Transport errors, 5xx, open breakers and
// evicted nodes fail over likewise. 4xx answers from a fresh node are
// genuine and returned as-is.
func (c *ClusterClient) DoRead(ctx context.Context, method, path string, body []byte) (*Response, error) {
	c.reads.Add(1)
	now := time.Now()
	primary := int(c.primaryIdx.Load()) % len(c.nodes)
	var rotation []*clusterNode
	for i := range c.nodes {
		if i != primary {
			rotation = append(rotation, c.nodes[i])
		}
	}
	n := len(rotation)
	start := 0
	if n > 0 {
		start = int(c.next.Add(1)-1) % n
	}
	var lastResp *Response
	var lastErr error
	tried := false
	for i := 0; i < n; i++ {
		node := rotation[(start+i)%n]
		if node.client.BreakerOpen() {
			c.breakers.Add(1)
			continue
		}
		if node.evicted(now) {
			c.evictSkips.Add(1)
			continue
		}
		if tried {
			c.failovers.Add(1)
		}
		tried = true
		resp, err := node.client.Do(ctx, method, path, body, true)
		if ctx.Err() != nil {
			return resp, err
		}
		switch {
		case err == nil:
			if c.fresh(resp) {
				node.staleStreak.Store(0)
				c.observe(resp)
				return resp, nil
			}
			c.noteStale(node)
			lastResp, lastErr = resp, nil
		case resp != nil && resp.Status < 500 && resp.Status != http.StatusTooManyRequests:
			// A definite 4xx — but a replica that has not caught up
			// answers 404 for meshes it has never seen, so a stale 4xx
			// fails over instead of being trusted.
			if c.fresh(resp) {
				node.staleStreak.Store(0)
				c.observe(resp)
				return resp, err
			}
			c.noteStale(node)
			lastResp, lastErr = resp, err
		default:
			lastResp, lastErr = resp, err
		}
	}
	if tried {
		c.failovers.Add(1)
	}
	c.primaryReads.Add(1)
	resp, err := c.primaryNode().client.Do(ctx, method, path, body, true)
	if err == nil || resp != nil {
		c.observe(resp)
		return resp, err
	}
	// The primary is down too; surface the most informative failure.
	if lastErr != nil || lastResp != nil {
		return lastResp, lastErr
	}
	return resp, err
}

// call mirrors Client.call over the cluster read/write router.
func (c *ClusterClient) call(ctx context.Context, write bool, method, path string, req any, idempotent bool, out any) error {
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			return fmt.Errorf("meshclient: encode request: %w", err)
		}
	}
	var resp *Response
	var err error
	if write {
		resp, err = c.DoWrite(ctx, method, path, body, idempotent)
	} else {
		resp, err = c.DoRead(ctx, method, path, body)
	}
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(resp.Body, out); err != nil {
		return fmt.Errorf("meshclient: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// --- writes (primary only) -------------------------------------------

// CreateMesh registers a named mesh on the primary.
func (c *ClusterClient) CreateMesh(ctx context.Context, name string, width, height int, faults []extmesh.Coord) (*MeshInfo, error) {
	req := map[string]any{"name": name, "width": width, "height": height, "faults": faults}
	var info MeshInfo
	if err := c.call(ctx, true, http.MethodPost, "/v1/mesh", req, false, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UploadMesh creates or replaces a mesh on the primary.
func (c *ClusterClient) UploadMesh(ctx context.Context, name string, blob []byte) (*MeshInfo, error) {
	resp, err := c.DoWrite(ctx, http.MethodPut, meshPath(name, ""), blob, true)
	if err != nil {
		return nil, err
	}
	var info MeshInfo
	if err := json.Unmarshal(resp.Body, &info); err != nil {
		return nil, fmt.Errorf("meshclient: decode upload response: %w", err)
	}
	return &info, nil
}

// DeleteMesh removes a mesh via the primary.
func (c *ClusterClient) DeleteMesh(ctx context.Context, name string) error {
	return c.call(ctx, true, http.MethodDelete, meshPath(name, ""), nil, true, nil)
}

// ApplyFaults applies a fault mutation on the primary.
func (c *ClusterClient) ApplyFaults(ctx context.Context, mesh string, req FaultsRequest) (*FaultsResult, error) {
	var out FaultsResult
	if err := c.call(ctx, true, http.MethodPost, meshPath(mesh, "/faults"), req, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- reads (replicas, primary fallback) ------------------------------

// GetMesh exports a mesh.
func (c *ClusterClient) GetMesh(ctx context.Context, name string) (*MeshState, error) {
	var st MeshState
	if err := c.call(ctx, false, http.MethodGet, meshPath(name, ""), nil, true, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ListMeshes returns the registered mesh summaries.
func (c *ClusterClient) ListMeshes(ctx context.Context) ([]MeshInfo, error) {
	var out struct {
		Meshes []MeshInfo `json:"meshes"`
	}
	if err := c.call(ctx, false, http.MethodGet, "/v1/mesh", nil, true, &out); err != nil {
		return nil, err
	}
	return out.Meshes, nil
}

// Route asks for a Wu-protocol route.
func (c *ClusterClient) Route(ctx context.Context, mesh string, q Query) (*RouteResult, error) {
	var out RouteResult
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/route"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Safe evaluates the paper's Theorem-1 sufficient condition.
func (c *ClusterClient) Safe(ctx context.Context, mesh string, q Query) (bool, error) {
	var out struct {
		Safe bool `json:"safe"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/safe"), q, true, &out); err != nil {
		return false, err
	}
	return out.Safe, nil
}

// Ensure runs the strategy cascade and returns its verdict.
func (c *ClusterClient) Ensure(ctx context.Context, mesh string, q Query) (*Assurance, error) {
	var out Assurance
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/ensure"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// HasMinimalPath asks the exact existence question.
func (c *ClusterClient) HasMinimalPath(ctx context.Context, mesh string, q Query) (bool, error) {
	var out struct {
		Exists bool `json:"exists"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/has-minimal-path"), q, true, &out); err != nil {
		return false, err
	}
	return out.Exists, nil
}

// RouteBatch routes many pairs in one request.
func (c *ClusterClient) RouteBatch(ctx context.Context, mesh string, pairs []Pair, model string, omitPaths bool) ([]BatchRouteResult, error) {
	req := map[string]any{"pairs": pairs, "model": model, "omit_paths": omitPaths}
	var out struct {
		Results []BatchRouteResult `json:"results"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/route/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// HasMinimalPathBatch answers existence for many destinations.
func (c *ClusterClient) HasMinimalPathBatch(ctx context.Context, mesh string, src extmesh.Coord, dests []extmesh.Coord) ([]bool, error) {
	req := map[string]any{"src": src, "dests": dests}
	var out struct {
		Results []bool `json:"results"`
	}
	if err := c.call(ctx, false, http.MethodPost, meshPath(mesh, "/has-minimal-path/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Ready reports whether the current primary has finished recovery.
func (c *ClusterClient) Ready(ctx context.Context) (bool, error) {
	return c.Primary().Ready(ctx)
}

// IsNotFound reports whether err is the server's 404 answer.
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}
