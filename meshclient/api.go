package meshclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"extmesh"
)

// The wire types below mirror internal/serve's JSON contract. They are
// declared here, not imported, so the client package documents the
// protocol it speaks and stays importable outside this module.

// MeshInfo is the summary the lifecycle endpoints return.
type MeshInfo struct {
	Name    string `json:"name"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Faults  int    `json:"faults"`
	Version uint64 `json:"version"`
}

// MeshState is the full export of GET /v1/mesh/{name}: the info plus
// the complete fault list.
type MeshState struct {
	Name    string          `json:"name"`
	Width   int             `json:"width"`
	Height  int             `json:"height"`
	Faults  []extmesh.Coord `json:"faults"`
	Version uint64          `json:"version"`
}

// Query is the shared body of the single-pair query endpoints.
type Query struct {
	Src      extmesh.Coord     `json:"src"`
	Dst      extmesh.Coord     `json:"dst"`
	Model    string            `json:"model,omitempty"`    // "blocks" (default) or "mcc"
	Strategy *extmesh.Strategy `json:"strategy,omitempty"` // nil = server default
	OmitPath bool              `json:"omit_path,omitempty"`
}

// RouteResult is one routing outcome.
type RouteResult struct {
	Hops int          `json:"hops"`
	Path extmesh.Path `json:"path,omitempty"`
}

// Assurance pairs a verdict with the condition that produced it.
type Assurance struct {
	Verdict string          `json:"verdict"`
	Via     []extmesh.Coord `json:"via,omitempty"`
	Hops    int             `json:"hops"`
	Path    extmesh.Path    `json:"path,omitempty"`
}

// Pair is one source/destination pair of a batch request.
type Pair struct {
	Src extmesh.Coord `json:"src"`
	Dst extmesh.Coord `json:"dst"`
}

// BatchRouteResult is one pair's outcome within a batch; Error is set
// when that pair failed and the route fields are meaningless.
type BatchRouteResult struct {
	Hops  int          `json:"hops"`
	Path  extmesh.Path `json:"path,omitempty"`
	Error string       `json:"error,omitempty"`
}

// FaultsRequest is the POST .../faults body: explicit lists or an
// inject-schedule spec (mutually exclusive).
type FaultsRequest struct {
	Fail    []extmesh.Coord `json:"fail,omitempty"`
	Recover []extmesh.Coord `json:"recover,omitempty"`
	Spec    string          `json:"spec,omitempty"`
	Cycles  int             `json:"cycles,omitempty"`
	Seed    int64           `json:"seed,omitempty"`
}

// FaultsResult reports what a fault batch changed.
type FaultsResult struct {
	Applied int    `json:"applied"`
	Skipped int    `json:"skipped"`
	Faults  int    `json:"faults"`
	Version uint64 `json:"version"`
}

// Stats is the per-mesh observability view.
type Stats struct {
	MeshInfo
	ReachHits    uint64  `json:"reach_hits"`
	ReachMisses  uint64  `json:"reach_misses"`
	ReachHitRate float64 `json:"reach_hit_rate"`
}

// call marshals req (nil means no body), performs Do, and decodes a
// 2xx body into out (nil discards it).
func (c *Client) call(ctx context.Context, method, path string, req any, idempotent bool, out any) error {
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			return fmt.Errorf("meshclient: encode request: %w", err)
		}
	}
	resp, err := c.Do(ctx, method, path, body, idempotent)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(resp.Body, out); err != nil {
		return fmt.Errorf("meshclient: decode %s %s response: %w", method, path, err)
	}
	return nil
}

func meshPath(name, suffix string) string {
	return "/v1/mesh/" + url.PathEscape(name) + suffix
}

// --- lifecycle --------------------------------------------------------

// CreateMesh registers a named mesh. Not idempotent: a replayed create
// would 409 against its own first delivery, so ambiguous failures are
// surfaced rather than retried.
func (c *Client) CreateMesh(ctx context.Context, name string, width, height int, faults []extmesh.Coord) (*MeshInfo, error) {
	req := map[string]any{"name": name, "width": width, "height": height, "faults": faults}
	var info MeshInfo
	if err := c.call(ctx, http.MethodPost, "/v1/mesh", req, false, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// UploadMesh creates or replaces a mesh from a serialized network blob
// (extmesh.Network/DynamicNetwork MarshalJSON format). PUT is
// idempotent — replaying it converges on the same state.
func (c *Client) UploadMesh(ctx context.Context, name string, blob []byte) (*MeshInfo, error) {
	resp, err := c.Do(ctx, http.MethodPut, meshPath(name, ""), blob, true)
	if err != nil {
		return nil, err
	}
	var info MeshInfo
	if err := json.Unmarshal(resp.Body, &info); err != nil {
		return nil, fmt.Errorf("meshclient: decode upload response: %w", err)
	}
	return &info, nil
}

// DeleteMesh removes a mesh. Idempotent in effect, but a replayed
// delete answers 404 — callers tolerating that may ignore
// *APIError with Status 404.
func (c *Client) DeleteMesh(ctx context.Context, name string) error {
	return c.call(ctx, http.MethodDelete, meshPath(name, ""), nil, true, nil)
}

// GetMesh exports a mesh: dimensions, version and full fault list.
func (c *Client) GetMesh(ctx context.Context, name string) (*MeshState, error) {
	var st MeshState
	if err := c.call(ctx, http.MethodGet, meshPath(name, ""), nil, true, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ListMeshes returns the registered mesh summaries.
func (c *Client) ListMeshes(ctx context.Context) ([]MeshInfo, error) {
	var out struct {
		Meshes []MeshInfo `json:"meshes"`
	}
	if err := c.call(ctx, http.MethodGet, "/v1/mesh", nil, true, &out); err != nil {
		return nil, err
	}
	return out.Meshes, nil
}

// --- single queries ---------------------------------------------------

// Route asks for a Wu-protocol route.
func (c *Client) Route(ctx context.Context, mesh string, q Query) (*RouteResult, error) {
	var out RouteResult
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/route"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RouteAssured asks for an Ensure verdict plus the two-phase route it
// guarantees.
func (c *Client) RouteAssured(ctx context.Context, mesh string, q Query) (*Assurance, error) {
	var out Assurance
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/route-assured"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Safe evaluates the paper's Theorem-1 sufficient condition.
func (c *Client) Safe(ctx context.Context, mesh string, q Query) (bool, error) {
	var out struct {
		Safe bool `json:"safe"`
	}
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/safe"), q, true, &out); err != nil {
		return false, err
	}
	return out.Safe, nil
}

// Ensure runs the strategy cascade and returns its verdict.
func (c *Client) Ensure(ctx context.Context, mesh string, q Query) (*Assurance, error) {
	var out Assurance
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/ensure"), q, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// HasMinimalPath asks the exact existence question.
func (c *Client) HasMinimalPath(ctx context.Context, mesh string, q Query) (bool, error) {
	var out struct {
		Exists bool `json:"exists"`
	}
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/has-minimal-path"), q, true, &out); err != nil {
		return false, err
	}
	return out.Exists, nil
}

// --- batch queries ----------------------------------------------------

// RouteBatch routes many pairs in one request (server worker pool).
func (c *Client) RouteBatch(ctx context.Context, mesh string, pairs []Pair, model string, omitPaths bool) ([]BatchRouteResult, error) {
	req := map[string]any{"pairs": pairs, "model": model, "omit_paths": omitPaths}
	var out struct {
		Results []BatchRouteResult `json:"results"`
	}
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/route/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// EnsureBatch fans one source against many destinations.
func (c *Client) EnsureBatch(ctx context.Context, mesh string, src extmesh.Coord, dests []extmesh.Coord, model string, strategy *extmesh.Strategy) ([]Assurance, error) {
	req := map[string]any{"src": src, "dests": dests, "model": model}
	if strategy != nil {
		req["strategy"] = strategy
	}
	var out struct {
		Results []Assurance `json:"results"`
	}
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/ensure/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// HasMinimalPathBatch answers existence for many destinations from one
// reachability sweep.
func (c *Client) HasMinimalPathBatch(ctx context.Context, mesh string, src extmesh.Coord, dests []extmesh.Coord) ([]bool, error) {
	req := map[string]any{"src": src, "dests": dests}
	var out struct {
		Results []bool `json:"results"`
	}
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/has-minimal-path/batch"), req, true, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// --- admin ------------------------------------------------------------

// ApplyFaults applies a fault mutation. Not idempotent: replaying a
// batch can double-apply against concurrent mutators, so ambiguous
// failures surface to the caller (429s and dial failures still retry).
func (c *Client) ApplyFaults(ctx context.Context, mesh string, req FaultsRequest) (*FaultsResult, error) {
	var out FaultsResult
	if err := c.call(ctx, http.MethodPost, meshPath(mesh, "/faults"), req, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InjectSpec applies an inject-schedule spec ("random:rate=0.01",
// "fail@0:3,4;recover@9:3,4", ...) with the given horizon and seed.
func (c *Client) InjectSpec(ctx context.Context, mesh, spec string, cycles int, seed int64) (*FaultsResult, error) {
	return c.ApplyFaults(ctx, mesh, FaultsRequest{Spec: spec, Cycles: cycles, Seed: seed})
}

// Stats fetches the per-mesh observability view.
func (c *Client) Stats(ctx context.Context, mesh string) (*Stats, error) {
	var out Stats
	if err := c.call(ctx, http.MethodGet, meshPath(mesh, "/stats"), nil, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready polls /readyz; true once the server has finished recovery.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	resp, err := c.Do(ctx, http.MethodGet, "/readyz", nil, true)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
			return false, nil
		}
		return false, err
	}
	return resp.Status == http.StatusOK, nil
}

// Healthy polls /healthz liveness.
func (c *Client) Healthy(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, true, nil)
}
