package meshclient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/journal"
	"extmesh/internal/metrics"
	"extmesh/internal/serve"
)

// fakeNode is a scripted cluster member: it answers every request with
// a fixed status, body and journal-seq header, counting calls.
type fakeNode struct {
	ts     *httptest.Server
	calls  atomic.Int64
	status atomic.Int64
	seq    atomic.Uint64
	body   atomic.Pointer[string]
}

func newFakeNode(t *testing.T, status int, seq uint64, body string) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	n.status.Store(int64(status))
	n.seq.Store(seq)
	n.body.Store(&body)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.calls.Add(1)
		if s := n.seq.Load(); s > 0 {
			w.Header().Set("X-Journal-Seq", fmt.Sprint(s))
		}
		w.WriteHeader(int(n.status.Load()))
		w.Write([]byte(*n.body.Load()))
	}))
	t.Cleanup(n.ts.Close)
	return n
}

func clusterOpts(primary *fakeNode, replicas ...*fakeNode) ClusterOptions {
	opts := ClusterOptions{Primary: primary.ts.URL, Node: fastOpts("")}
	opts.Node.MaxRetries = -1 // isolate cluster routing from per-node retries
	for _, r := range replicas {
		opts.Replicas = append(opts.Replicas, r.ts.URL)
	}
	return opts
}

func newCluster(t *testing.T, opts ClusterOptions) *ClusterClient {
	t.Helper()
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestJournalSeqHeaderParsed(t *testing.T) {
	node := newFakeNode(t, 200, 42, `{}`)
	c := newClient(t, fastOpts(node.ts.URL))
	resp, err := c.Do(context.Background(), "GET", "/q", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.HasJournalSeq || resp.JournalSeq != 42 {
		t.Fatalf("resp seq = %v/%d, want 42", resp.HasJournalSeq, resp.JournalSeq)
	}

	// Absent header: HasJournalSeq stays false.
	node.seq.Store(0)
	resp, err = c.Do(context.Background(), "GET", "/q", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.HasJournalSeq {
		t.Fatal("HasJournalSeq = true with no header")
	}
}

func TestBreakerCountersAndJitter(t *testing.T) {
	node := newFakeNode(t, 500, 0, `{}`)
	opts := fastOpts(node.ts.URL)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 20 * time.Millisecond
	opts.MaxRetries = -1
	c := newClient(t, opts)

	for i := 0; i < 2; i++ {
		c.Do(context.Background(), "GET", "/q", nil, true)
	}
	if !c.BreakerOpen() {
		t.Fatal("breaker not open after threshold failures")
	}
	if got := c.Counts().BreakerOpens; got != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", got)
	}

	// After cooldown (plus jitter, bounded by cooldown/2) a probe runs;
	// the node is still down, so the breaker re-opens and both counters
	// advance.
	time.Sleep(35 * time.Millisecond)
	if c.BreakerOpen() {
		t.Fatal("breaker still reporting open after cooldown+jitter elapsed")
	}
	c.Do(context.Background(), "GET", "/q", nil, true)
	counts := c.Counts()
	if counts.BreakerProbes != 1 || counts.BreakerOpens != 2 {
		t.Fatalf("counts = %+v, want Probes=1 Opens=2", counts)
	}

	// Healthy probe closes it and resets the cycle.
	node.status.Store(200)
	time.Sleep(35 * time.Millisecond)
	if _, err := c.Do(context.Background(), "GET", "/q", nil, true); err != nil {
		t.Fatalf("healthy probe = %v", err)
	}
	if c.BreakerOpen() {
		t.Fatal("breaker open after successful probe")
	}
}

func TestBreakerJitterDeterministicPerSeed(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		c := newClient(t, Options{BaseURL: "http://localhost:1", RetrySeed: seed, BreakerThreshold: 1, BreakerCooldown: time.Second})
		var out []time.Duration
		for i := 0; i < 4; i++ {
			out = append(out, time.Duration(c.breaker.rng.Int63n(int64(time.Second)/2+1)))
		}
		return out
	}
	a, b := delays(11), delays(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClusterRoutesWritesToPrimaryReadsToReplicas(t *testing.T) {
	primary := newFakeNode(t, 200, 7, `{}`)
	r1 := newFakeNode(t, 200, 7, `{}`)
	r2 := newFakeNode(t, 200, 7, `{}`)
	c := newCluster(t, clusterOpts(primary, r1, r2))
	ctx := context.Background()

	if _, err := c.DoWrite(ctx, "POST", "/v1/mesh", []byte(`{}`), false); err != nil {
		t.Fatal(err)
	}
	if primary.calls.Load() != 1 || r1.calls.Load()+r2.calls.Load() != 0 {
		t.Fatal("write did not go exclusively to the primary")
	}
	if c.Watermark() != 7 {
		t.Fatalf("watermark = %d, want 7 from the write response", c.Watermark())
	}

	for i := 0; i < 4; i++ {
		if _, err := c.DoRead(ctx, "GET", "/v1/mesh", nil); err != nil {
			t.Fatal(err)
		}
	}
	if r1.calls.Load() != 2 || r2.calls.Load() != 2 {
		t.Fatalf("reads spread %d/%d, want 2/2 round-robin", r1.calls.Load(), r2.calls.Load())
	}
	if primary.calls.Load() != 1 {
		t.Fatal("reads reached the primary despite healthy replicas")
	}
	counts := c.Counts()
	if counts.Reads != 4 || counts.Writes != 1 || counts.PrimaryReads != 0 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestClusterRejectsStaleReplica(t *testing.T) {
	primary := newFakeNode(t, 200, 9, `{}`)
	stale := newFakeNode(t, 200, 3, `{}`)
	fresh := newFakeNode(t, 200, 9, `{}`)
	c := newCluster(t, clusterOpts(primary, stale, fresh))
	ctx := context.Background()

	// Establish the watermark via a write.
	if _, err := c.DoWrite(ctx, "POST", "/w", nil, false); err != nil {
		t.Fatal(err)
	}

	// Every read must land on the fresh replica, however the cursor
	// rotates; the stale one gets tried and rejected.
	for i := 0; i < 4; i++ {
		resp, err := c.DoRead(ctx, "GET", "/q", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.JournalSeq != 9 {
			t.Fatalf("accepted answer at seq %d, want 9", resp.JournalSeq)
		}
	}
	counts := c.Counts()
	if counts.StaleRejects == 0 {
		t.Fatal("stale replica answers were never rejected")
	}
	if counts.PrimaryReads != 0 {
		t.Fatal("fell back to primary despite a fresh replica")
	}

	// With slack covering the lag, the stale replica is acceptable.
	c2 := newCluster(t, clusterOpts(primary, stale, fresh))
	c2.opts.MaxStalenessRecords = 6
	if _, err := c2.DoWrite(ctx, "POST", "/w", nil, false); err != nil {
		t.Fatal(err)
	}
	staleBefore := stale.calls.Load()
	for i := 0; i < 4; i++ {
		if _, err := c2.DoRead(ctx, "GET", "/q", nil); err != nil {
			t.Fatal(err)
		}
	}
	if c2.Counts().StaleRejects != 0 {
		t.Fatal("bounded-staleness read rejected a replica within the bound")
	}
	if stale.calls.Load() == staleBefore {
		t.Fatal("lagging-but-in-bound replica never served")
	}
}

func TestClusterStale404FailsOverGenuine404Returned(t *testing.T) {
	primary := newFakeNode(t, 200, 5, `{"ok":true}`)
	lagging := newFakeNode(t, 404, 2, `{"error":"mesh not found"}`)
	c := newCluster(t, clusterOpts(primary, lagging))
	ctx := context.Background()
	if _, err := c.DoWrite(ctx, "POST", "/w", nil, false); err != nil {
		t.Fatal(err)
	}

	// The replica 404s at seq 2 — it simply hasn't replicated the
	// create yet — so the read must fall through to the primary.
	resp, err := c.DoRead(ctx, "GET", "/v1/mesh/m", nil)
	if err != nil {
		t.Fatalf("stale 404 surfaced instead of failing over: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d, want the primary's 200", resp.Status)
	}
	if c.Counts().PrimaryReads != 1 || c.Counts().StaleRejects == 0 {
		t.Fatalf("counts = %+v, want a stale reject and a primary fallback", c.Counts())
	}

	// Once the replica is caught up, its 404 is the genuine answer and
	// is returned without touching the primary.
	lagging.seq.Store(5)
	primaryBefore := primary.calls.Load()
	_, err = c.DoRead(ctx, "GET", "/v1/mesh/m", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("err = %v, want genuine 404", err)
	}
	if primary.calls.Load() != primaryBefore {
		t.Fatal("genuine 404 still consulted the primary")
	}
}

func TestClusterFailsOverDeadReplicaAndSkipsTrippedBreaker(t *testing.T) {
	primary := newFakeNode(t, 200, 1, `{}`)
	dead := newFakeNode(t, 200, 1, `{}`)
	alive := newFakeNode(t, 200, 1, `{}`)
	opts := clusterOpts(primary, dead, alive)
	opts.Node.BreakerThreshold = 1
	opts.Node.BreakerCooldown = time.Hour
	c := newCluster(t, opts)
	dead.ts.Close()
	ctx := context.Background()

	// Every read succeeds; attempts on the dead node fail over.
	for i := 0; i < 6; i++ {
		if _, err := c.DoRead(ctx, "GET", "/q", nil); err != nil {
			t.Fatal(err)
		}
	}
	counts := c.Counts()
	if counts.Failovers == 0 {
		t.Fatal("dead replica never triggered a failover")
	}
	// The first failure trips the dead node's breaker; later rounds
	// skip it outright instead of re-dialing.
	if counts.BreakerSkips == 0 {
		t.Fatal("tripped breaker never short-circuited node selection")
	}
	if counts.PrimaryReads != 0 {
		t.Fatal("fell back to primary despite a healthy replica")
	}

	// All replicas gone: reads fall back to the primary and still work.
	alive.ts.Close()
	if _, err := c.DoRead(ctx, "GET", "/q", nil); err != nil {
		t.Fatal(err)
	}
	if c.Counts().PrimaryReads != 1 {
		t.Fatalf("PrimaryReads = %d, want 1", c.Counts().PrimaryReads)
	}
}

// TestClusterAgainstRealReplication wires a genuine primary+replica pair
// (journal shipping over TCP) and drives it through the cluster client:
// with zero staleness budget, a read issued right after a write either
// comes from a caught-up replica or fails over to the primary — it is
// never wrong.
func TestClusterAgainstRealReplication(t *testing.T) {
	mkServer := func() *serve.Server {
		store, err := journal.Open(t.TempDir(), journal.Options{Policy: journal.SyncNever, Metrics: metrics.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		s := serve.New(serve.Options{Journal: store, Metrics: metrics.NewRegistry()})
		if err := s.Recover(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	primary := mkServer()
	replica := mkServer()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go primary.ServeReplication(ctx, l)
	defer l.Close()
	rep := serve.NewReplica(replica, serve.ReplicaOptions{Source: l.Addr().String(), Retry: 20 * time.Millisecond})
	go rep.Run(ctx)

	pHTTP := httptest.NewServer(primary.Handler())
	defer pHTTP.Close()
	rHTTP := httptest.NewServer(replica.Handler())
	defer rHTTP.Close()

	opts := ClusterOptions{Primary: pHTTP.URL, Replicas: []string{rHTTP.URL}, Node: fastOpts("")}
	c := newCluster(t, opts)
	cctx := context.Background()

	if _, err := c.CreateMesh(cctx, "m", 16, 16, []extmesh.Coord{{X: 4, Y: 4}}); err != nil {
		t.Fatal(err)
	}
	src, dst := extmesh.Coord{X: 0, Y: 0}, extmesh.Coord{X: 15, Y: 15}

	// Oracle answer from the primary's own registry.
	n, err := primary.Meshes().Get("m").Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, err := n.Route(src, dst, extmesh.Blocks)
	if err != nil {
		t.Fatal(err)
	}

	// Immediately after the write the replica may not have applied it;
	// every read must still give the right answer (failover, never
	// staleness).
	for i := 0; i < 8; i++ {
		rr, err := c.Route(cctx, "m", Query{Src: src, Dst: dst})
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if rr.Hops != len(want)-1 {
			t.Fatalf("read %d: hops = %d, want %d", i, rr.Hops, len(want)-1)
		}
	}

	// Wait for replication, then confirm reads are served by the
	// replica once it is caught up.
	deadline := time.Now().Add(5 * time.Second)
	for replica.JournalSeq() != primary.JournalSeq() {
		if time.Now().After(deadline) {
			t.Fatal("replica never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := c.ReplicaClients()[0].Counts().Requests
	if _, err := c.Route(cctx, "m", Query{Src: src, Dst: dst}); err != nil {
		t.Fatal(err)
	}
	if c.ReplicaClients()[0].Counts().Requests == before {
		t.Fatal("caught-up replica did not serve the read")
	}

	// A second write advances the watermark; list from the cluster
	// reflects it immediately.
	if _, err := c.ApplyFaults(cctx, "m", FaultsRequest{Fail: []extmesh.Coord{{X: 9, Y: 9}}}); err != nil {
		t.Fatal(err)
	}
	if c.Watermark() != primary.JournalSeq() {
		t.Fatalf("watermark = %d, want primary seq %d", c.Watermark(), primary.JournalSeq())
	}
	list, err := c.ListMeshes(cctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Faults != 2 {
		t.Fatalf("ListMeshes = %+v, want one mesh with 2 faults", list)
	}
}
