package meshclient

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"extmesh"
	"extmesh/internal/wire"
)

// BinaryOptions configures a BinaryClient.
type BinaryOptions struct {
	// Addr is the daemon's binary listener, e.g. "localhost:8424".
	Addr string
	// DialTimeout bounds connection establishment; 0 selects 2s.
	DialTimeout time.Duration
	// CallTimeout bounds one call's write-plus-read on the wire;
	// 0 selects 30s. The caller's context can end a call sooner only
	// between attempts (the protocol is synchronous per connection).
	CallTimeout time.Duration
	// MaxRetries is how many times a transport-failed call is replayed
	// on a fresh connection (total attempts = MaxRetries+1); 0 selects
	// 2, negative disables retries. Every binary operation is a query,
	// so replays are always safe.
	MaxRetries int
}

func (o BinaryOptions) withDefaults() BinaryOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	return o
}

// BinaryClient speaks the binary query protocol (internal/wire) over
// one persistent connection: length-prefixed frames, no per-request
// HTTP or JSON cost. Calls are synchronous and serialized per client —
// drive one BinaryClient per worker for parallel load (a dial is far
// cheaper than the queries it amortizes). A transport failure closes
// the connection and the call is replayed on a fresh dial, so a
// restarted or chaos-disrupted server costs a reconnect, not an error.
//
// The binary surface covers the query plane only (routes, conditions,
// existence, batches) with the server's default strategy; lifecycle
// and fault admin stay on the JSON Client.
type BinaryClient struct {
	opts BinaryOptions

	mu     sync.Mutex
	conn   net.Conn
	nextID uint32
	reqBuf []byte
	frame  []byte
}

// NewBinary assembles a binary client for the daemon listener at
// opts.Addr. The connection is dialed lazily on first call.
func NewBinary(opts BinaryOptions) (*BinaryClient, error) {
	opts = opts.withDefaults()
	if _, _, err := net.SplitHostPort(opts.Addr); err != nil {
		return nil, fmt.Errorf("meshclient: invalid binary address %q: %v", opts.Addr, err)
	}
	return &BinaryClient{opts: opts}, nil
}

// Close tears down the connection; in-flight calls fail.
func (c *BinaryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// statusToHTTP maps wire statuses onto the HTTP statuses the JSON
// endpoints answer with, so both transports surface the same *APIError.
func statusToHTTP(status uint8) int {
	switch status {
	case wire.StatusBadRequest:
		return http.StatusBadRequest
	case wire.StatusNotFound:
		return http.StatusNotFound
	case wire.StatusUnprocessable:
		return http.StatusUnprocessableEntity
	case wire.StatusSaturated:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// roundTrip performs one request/response exchange with reconnect
// retries. A server error status is returned as *APIError and never
// retried except saturation (shed before any work, like HTTP 429).
func (c *BinaryClient) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID
	maxAttempts := 1 + c.opts.MaxRetries
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.exchangeLocked(req)
		if err == nil {
			if resp.Status == wire.StatusOK {
				return resp, nil
			}
			apiErr := &APIError{Status: statusToHTTP(resp.Status), Message: resp.Err}
			if resp.Status != wire.StatusSaturated || attempt == maxAttempts-1 {
				return resp, apiErr
			}
			lastErr = apiErr
			continue
		}
		lastErr = err
	}
	return nil, lastErr
}

// exchangeLocked writes one frame and reads its response on the held
// connection, dialing as needed; any failure closes the connection so
// the next attempt starts clean.
func (c *BinaryClient) exchangeLocked(req *wire.Request) (*wire.Response, error) {
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.opts.Addr, c.opts.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("meshclient: dial binary: %w", err)
		}
		c.conn = conn
	}
	fail := func(err error) (*wire.Response, error) {
		c.conn.Close()
		c.conn = nil
		return nil, err
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout)); err != nil {
		return fail(fmt.Errorf("meshclient: %w", err))
	}
	c.reqBuf = wire.AppendRequest(c.reqBuf[:0], req)
	if err := wire.WriteFrame(c.conn, c.reqBuf); err != nil {
		return fail(fmt.Errorf("meshclient: write frame: %w", err))
	}
	body, err := wire.ReadFrame(c.conn, wire.MaxResponseFrame, c.frame)
	if err != nil {
		return fail(fmt.Errorf("meshclient: read frame: %w", err))
	}
	c.frame = body[:0]
	resp, err := wire.DecodeResponse(body, req.Op)
	if err != nil {
		return fail(fmt.Errorf("meshclient: %w", err))
	}
	if resp.ID != req.ID {
		// The stream answered some other request: a desynchronized or
		// half-restarted connection. Drop it.
		return fail(fmt.Errorf("meshclient: response id %d for request %d", resp.ID, req.ID))
	}
	return resp, nil
}

// binFlags converts a Query's model and path options to wire flags.
func binFlags(model string, omitPath bool) (uint8, error) {
	var flags uint8
	switch model {
	case "", "blocks":
	case "mcc":
		flags |= wire.FlagMCC
	default:
		return 0, fmt.Errorf("meshclient: unknown fault model %q (want blocks or mcc)", model)
	}
	if omitPath {
		flags |= wire.FlagOmitPaths
	}
	return flags, nil
}

// verdictString names a wire verdict byte exactly like the server's
// JSON encoding of the same verdict.
func verdictString(v uint8) string {
	switch v {
	case 1:
		return "minimal"
	case 2:
		return "sub-minimal"
	default:
		return "unknown"
	}
}

// checkQuery rejects options the binary protocol cannot express.
func checkQuery(q Query) error {
	if q.Strategy != nil {
		return fmt.Errorf("meshclient: the binary protocol supports the server's default strategy only")
	}
	return nil
}

// Route asks for a Wu-protocol route over the binary transport.
func (c *BinaryClient) Route(ctx context.Context, mesh string, q Query) (*RouteResult, error) {
	if err := checkQuery(q); err != nil {
		return nil, err
	}
	flags, err := binFlags(q.Model, q.OmitPath)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpRoute, Flags: flags, Mesh: mesh, Src: q.Src, Dst: q.Dst,
	})
	if err != nil {
		return nil, err
	}
	return &RouteResult{Hops: resp.Hops, Path: resp.Path}, nil
}

// Safe evaluates the Theorem-1 condition over the binary transport.
func (c *BinaryClient) Safe(ctx context.Context, mesh string, q Query) (bool, error) {
	if err := checkQuery(q); err != nil {
		return false, err
	}
	flags, err := binFlags(q.Model, false)
	if err != nil {
		return false, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpSafe, Flags: flags, Mesh: mesh, Src: q.Src, Dst: q.Dst,
	})
	if err != nil {
		return false, err
	}
	return resp.Bool, nil
}

// Ensure runs the default strategy cascade over the binary transport.
func (c *BinaryClient) Ensure(ctx context.Context, mesh string, q Query) (*Assurance, error) {
	if err := checkQuery(q); err != nil {
		return nil, err
	}
	flags, err := binFlags(q.Model, false)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpEnsure, Flags: flags, Mesh: mesh, Src: q.Src, Dst: q.Dst,
	})
	if err != nil {
		return nil, err
	}
	return &Assurance{
		Verdict: verdictString(resp.Ensure.Verdict),
		Via:     resp.Ensure.Via,
		Hops:    -1,
	}, nil
}

// HasMinimalPath asks the exact existence question over the binary
// transport.
func (c *BinaryClient) HasMinimalPath(ctx context.Context, mesh string, q Query) (bool, error) {
	if err := checkQuery(q); err != nil {
		return false, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpHasMinimalPath, Mesh: mesh, Src: q.Src, Dst: q.Dst,
	})
	if err != nil {
		return false, err
	}
	return resp.Bool, nil
}

// RouteBatch routes many pairs in one frame.
func (c *BinaryClient) RouteBatch(ctx context.Context, mesh string, pairs []Pair, model string, omitPaths bool) ([]BatchRouteResult, error) {
	flags, err := binFlags(model, omitPaths)
	if err != nil {
		return nil, err
	}
	flat := make([]extmesh.Coord, 0, 2*len(pairs))
	for _, p := range pairs {
		flat = append(flat, p.Src, p.Dst)
	}
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpRouteBatch, Flags: flags, Mesh: mesh, Pairs: flat,
	})
	if err != nil {
		return nil, err
	}
	out := make([]BatchRouteResult, len(resp.Routes))
	for i, r := range resp.Routes {
		if !r.OK {
			out[i] = BatchRouteResult{Hops: -1, Error: r.Err}
			continue
		}
		out[i] = BatchRouteResult{Hops: r.Hops, Path: r.Path}
	}
	return out, nil
}

// HasMinimalPathBatch answers existence for many destinations from one
// frame and one server-side sweep.
func (c *BinaryClient) HasMinimalPathBatch(ctx context.Context, mesh string, src extmesh.Coord, dests []extmesh.Coord) ([]bool, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpHasMinimalPathBatch, Mesh: mesh, Src: src, Dests: dests,
	})
	if err != nil {
		return nil, err
	}
	return resp.Bits, nil
}

// EnsureBatch fans one source against many destinations with the
// server's default strategy.
func (c *BinaryClient) EnsureBatch(ctx context.Context, mesh string, src extmesh.Coord, dests []extmesh.Coord, model string) ([]Assurance, error) {
	flags, err := binFlags(model, false)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{
		Op: wire.OpEnsureBatch, Flags: flags, Mesh: mesh, Src: src, Dests: dests,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Assurance, len(resp.Ensures))
	for i, e := range resp.Ensures {
		out[i] = Assurance{Verdict: verdictString(e.Verdict), Via: e.Via, Hops: -1}
	}
	return out, nil
}
