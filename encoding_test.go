package extmesh

import (
	"encoding/json"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	n := paperNetwork(t)
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := UnmarshalNetwork(data)
	if err != nil {
		t.Fatalf("UnmarshalNetwork: %v", err)
	}
	if back.Width() != n.Width() || back.Height() != n.Height() {
		t.Errorf("dims changed: %dx%d", back.Width(), back.Height())
	}
	if len(back.Faults()) != len(n.Faults()) {
		t.Fatalf("fault count changed: %d", len(back.Faults()))
	}
	// Derived structures are identical.
	a, b := n.Blocks(), back.Blocks()
	if len(a) != len(b) {
		t.Fatalf("blocks changed: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("block %d changed: %v vs %v", i, a[i], b[i])
		}
	}
	if n.DisabledCount(MCC) != back.DisabledCount(MCC) {
		t.Error("MCC disabled count changed")
	}
}

func TestNetworkJSONStableFormat(t *testing.T) {
	n, err := New(4, 3, []Coord{{X: 1, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"width":4,"height":3,"faults":[{"X":1,"Y":2}]}`
	if string(data) != want {
		t.Errorf("format drift:\n got %s\nwant %s", data, want)
	}
}

func TestUnmarshalNetworkErrors(t *testing.T) {
	if _, err := UnmarshalNetwork([]byte(`{`)); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := UnmarshalNetwork([]byte(`{"width":0,"height":4}`)); err == nil {
		t.Error("invalid dimensions should fail")
	}
	if _, err := UnmarshalNetwork([]byte(`{"width":4,"height":4,"faults":[{"X":9,"Y":0}]}`)); err == nil {
		t.Error("out-of-mesh fault should fail")
	}
}

func TestDynamicJSONRoundTrip(t *testing.T) {
	d, err := NewDynamic(9, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Coord{{X: 2, Y: 3}, {X: 5, Y: 5}} {
		if err := d.AddFault(c); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	// A dynamic blob is readable both live and frozen.
	back, err := UnmarshalDynamic(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width() != 9 || back.Height() != 7 || back.FaultCount() != 2 {
		t.Fatalf("round trip changed the network: %dx%d, %d faults",
			back.Width(), back.Height(), back.FaultCount())
	}
	frozen, err := UnmarshalNetwork(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frozen.Faults()) != 2 {
		t.Fatalf("frozen decode lost faults: %v", frozen.Faults())
	}
	// The revived network keeps mutating.
	if err := back.AddFault(Coord{X: 0, Y: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDynamicErrors(t *testing.T) {
	if _, err := UnmarshalDynamic([]byte(`{`)); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := UnmarshalDynamic([]byte(`{"width":1000000,"height":1000000}`)); err == nil {
		t.Error("implausible dimensions should fail")
	}
	if _, err := UnmarshalDynamic([]byte(`{"width":4,"height":4,"faults":[{"X":9,"Y":0}]}`)); err == nil {
		t.Error("out-of-mesh fault should fail")
	}
	if _, err := UnmarshalDynamic([]byte(`{"width":4,"height":4,"faults":[{"X":1,"Y":1},{"X":1,"Y":1}]}`)); err == nil {
		t.Error("duplicate fault should fail")
	}
}
