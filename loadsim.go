package extmesh

import (
	"fmt"

	"extmesh/internal/inject"
	"extmesh/internal/route"
	"extmesh/internal/traffic"
	"extmesh/internal/wormhole"
)

// RoutingKind selects the routing function driving a traffic
// simulation.
type RoutingKind int

// Routing kinds available to SimulateTraffic.
const (
	// WuProtocol routes with the paper's limited-information protocol.
	WuProtocol RoutingKind = iota + 1
	// OracleRouter routes with full global information (upper bound).
	OracleRouter
	// XYRouter is the classic fault-oblivious dimension-ordered
	// baseline.
	XYRouter
)

// FaultPolicy decides what happens to an in-flight packet whose next
// hop dies during an online fault-injection run.
type FaultPolicy = traffic.Policy

// Fault policies available to SimulateTraffic.
const (
	// RerouteFaults re-routes affected packets from their current node.
	RerouteFaults = traffic.PolicyReroute
	// DegradeFaults re-routes and, when no minimal path survives, takes
	// the paper's Extension-1 sub-minimal spare-neighbor detour.
	DegradeFaults = traffic.PolicyDegrade
	// DropFaults discards affected packets (fail-stop baseline).
	DropFaults = traffic.PolicyDrop
)

// TrafficOptions configures a SimulateTraffic run. The zero value is
// not valid; start from DefaultTrafficOptions.
type TrafficOptions struct {
	Model   FaultModel
	Routing RoutingKind

	// InjectionRate is the probability per healthy node per cycle of
	// injecting one packet to a uniformly random healthy destination.
	InjectionRate float64
	Cycles        int
	Warmup        int
	Seed          int64

	// GuaranteedOnly restricts traffic to pairs with a minimal path.
	GuaranteedOnly bool

	// QueueCapacity bounds each per-link queue (0 = unbounded) in
	// store-and-forward mode; ClassChannels adds one virtual channel
	// per quadrant class, which makes minimal routing deadlock-free.
	QueueCapacity int
	ClassChannels bool

	// Wormhole switches to flit-level wormhole simulation with
	// FlitsPerPacket-flit worms, BufferFlits-deep virtual-channel
	// buffers and per-quadrant channel classes.
	Wormhole       bool
	FlitsPerPacket int
	BufferFlits    int

	// FaultSchedule injects faults mid-run, in inject.Parse syntax:
	// "random:rate=0.001", "bursts:count=2,size=6,spread=2",
	// "transient:rate=0.001,repair=50", or an explicit event list like
	// "fail@10:3,4;recover@50:3,4". Empty disables online injection.
	// Online injection maintains fault regions incrementally and is
	// only available under the Blocks model.
	FaultSchedule string
	// FaultRate is shorthand for FaultSchedule "random:rate=<v>"; the
	// two are mutually exclusive.
	FaultRate float64
	// FaultPolicy handles in-flight packets whose next hop died; zero
	// means RerouteFaults.
	FaultPolicy FaultPolicy
	// FaultSeed seeds generated fault schedules; zero means Seed+1, so
	// fault arrivals stay decoupled from the traffic stream.
	FaultSeed int64
}

// DefaultTrafficOptions returns a light uniform load under the block
// model with Wu-protocol routing.
func DefaultTrafficOptions() TrafficOptions {
	return TrafficOptions{
		Model:          Blocks,
		Routing:        WuProtocol,
		InjectionRate:  0.02,
		Cycles:         400,
		Warmup:         100,
		Seed:           1,
		GuaranteedOnly: true,
		FlitsPerPacket: 8,
		BufferFlits:    2,
	}
}

// online reports whether the options request mid-run fault injection.
func (o TrafficOptions) online() bool {
	return o.FaultSchedule != "" || o.FaultRate > 0
}

// Validate reports whether the options describe a runnable simulation,
// with a descriptive error naming the offending field otherwise.
func (o TrafficOptions) Validate() error {
	if o.InjectionRate < 0 || o.InjectionRate > 1 {
		return fmt.Errorf("extmesh: injection rate %v outside [0,1]", o.InjectionRate)
	}
	if o.Cycles <= 0 {
		return fmt.Errorf("extmesh: cycles must be positive, got %d", o.Cycles)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("extmesh: warmup must be non-negative, got %d", o.Warmup)
	}
	if o.Warmup >= o.Cycles {
		return fmt.Errorf("extmesh: warmup (%d) must be smaller than cycles (%d) or no cycle is measured", o.Warmup, o.Cycles)
	}
	if o.QueueCapacity < 0 {
		return fmt.Errorf("extmesh: queue capacity must be non-negative, got %d", o.QueueCapacity)
	}
	if o.FlitsPerPacket < 0 {
		return fmt.Errorf("extmesh: flits per packet must be non-negative, got %d", o.FlitsPerPacket)
	}
	if o.BufferFlits < 0 {
		return fmt.Errorf("extmesh: buffer flits must be non-negative, got %d", o.BufferFlits)
	}
	if o.FaultRate < 0 || o.FaultRate > 1 {
		return fmt.Errorf("extmesh: fault rate %v outside [0,1]", o.FaultRate)
	}
	if o.FaultRate > 0 && o.FaultSchedule != "" {
		return fmt.Errorf("extmesh: FaultRate and FaultSchedule are mutually exclusive")
	}
	if o.online() {
		if o.Model != Blocks {
			return fmt.Errorf("extmesh: online fault injection requires the Blocks model")
		}
		if p := o.FaultPolicy; p != 0 && (p < RerouteFaults || p > DropFaults) {
			return fmt.Errorf("extmesh: invalid fault policy %d", p)
		}
	}
	return nil
}

// TrafficStats is the unified outcome of a traffic simulation.
type TrafficStats struct {
	Injected      int
	Delivered     int
	Undeliverable int
	Deadlocked    bool
	AvgLatency    float64
	AvgStretch    float64
	Throughput    float64

	// Online fault-injection outcome; all zero for static runs.
	FaultEvents int // schedule events applied
	Rerouted    int // packets pulled off a dead link and re-enqueued
	Degraded    int // packets that took at least one spare-neighbor detour
	Dropped     int // packets lost to faults, all reasons
	// StretchHist buckets every delivered packet (warmup included) by
	// path stretch hops/distance: bucket i covers [1+i/4, 1+(i+1)/4),
	// the last bucket open-ended.
	StretchHist [8]int
}

// SimulateTraffic runs the network under uniform random load and
// reports delivery statistics: either store-and-forward packet
// switching or flit-level wormhole switching, with Wu's protocol, the
// oracle, or the XY baseline making the per-hop decisions. A fault
// schedule turns the run into an online fault-tolerance experiment:
// faults arrive (and possibly recover) mid-run, routing state is
// rebuilt incrementally, and affected packets are handled by the
// configured policy.
func (n *Network) SimulateTraffic(opts TrafficOptions) (TrafficStats, error) {
	if err := opts.Validate(); err != nil {
		return TrafficStats{}, err
	}
	md, err := n.modelFor(opts.Model, 1)
	if err != nil {
		return TrafficStats{}, err
	}
	blocked := md.Blocked

	routingFor := func(blocked []bool) (traffic.RoutingFunc, error) {
		switch opts.Routing {
		case WuProtocol:
			return traffic.WuRouting(route.NewRouter(n.m, blocked)), nil
		case OracleRouter:
			return traffic.OracleRouting(n.m, blocked), nil
		case XYRouter:
			return traffic.XYRouting(n.m, blocked), nil
		default:
			return nil, fmt.Errorf("extmesh: unknown routing kind %d", opts.Routing)
		}
	}
	fn, err := routingFor(blocked)
	if err != nil {
		return TrafficStats{}, err
	}

	var on *traffic.Online
	if opts.online() {
		spec := opts.FaultSchedule
		if opts.FaultRate > 0 {
			spec = fmt.Sprintf("random:rate=%g", opts.FaultRate)
		}
		seed := opts.FaultSeed
		if seed == 0 {
			seed = opts.Seed + 1
		}
		sched, err := inject.Parse(n.m, opts.Warmup+opts.Cycles, seed, spec)
		if err != nil {
			return TrafficStats{}, err
		}
		on = &traffic.Online{
			InitialFaults: n.Faults(),
			Schedule:      sched,
			Policy:        opts.FaultPolicy,
			Rebuild: func(blocked []bool) traffic.RoutingFunc {
				fn, _ := routingFor(blocked)
				return fn
			},
		}
	}

	if opts.Wormhole {
		cfg := wormhole.Config{
			M:              n.m,
			Blocked:        blocked,
			Route:          fn,
			FlitsPerPacket: opts.FlitsPerPacket,
			BufferFlits:    opts.BufferFlits,
			ClassVCs:       true,
			InjectionRate:  opts.InjectionRate,
			Cycles:         opts.Cycles,
			Warmup:         opts.Warmup,
			Seed:           opts.Seed,
			GuaranteedOnly: opts.GuaranteedOnly,
		}
		var st wormhole.Stats
		var ost traffic.OnlineStats
		if on != nil {
			st, ost, err = wormhole.RunOnline(cfg, on)
		} else {
			st, err = wormhole.Run(cfg)
		}
		if err != nil {
			return TrafficStats{}, err
		}
		return mergeStats(TrafficStats{
			Injected:      st.Injected,
			Delivered:     st.Delivered,
			Undeliverable: st.Undeliverable,
			Deadlocked:    st.Deadlocked,
			AvgLatency:    st.AvgLatency,
			AvgStretch:    st.AvgStretch,
			Throughput:    st.Throughput,
		}, on != nil, ost), nil
	}

	cfg := traffic.Config{
		M:              n.m,
		Blocked:        blocked,
		Route:          fn,
		InjectionRate:  opts.InjectionRate,
		Cycles:         opts.Cycles,
		Warmup:         opts.Warmup,
		Seed:           opts.Seed,
		GuaranteedOnly: opts.GuaranteedOnly,
		QueueCapacity:  opts.QueueCapacity,
		ClassChannels:  opts.ClassChannels,
	}
	var st traffic.Stats
	var ost traffic.OnlineStats
	if on != nil {
		st, ost, err = traffic.RunOnline(cfg, on)
	} else {
		st, err = traffic.Run(cfg)
	}
	if err != nil {
		return TrafficStats{}, err
	}
	return mergeStats(TrafficStats{
		Injected:      st.Injected,
		Delivered:     st.Delivered,
		Undeliverable: st.Undeliverable,
		Deadlocked:    st.Deadlocked,
		AvgLatency:    st.AvgLatency,
		AvgStretch:    st.AvgStretch,
		Throughput:    st.Throughput,
	}, on != nil, ost), nil
}

// mergeStats folds the online counters into the unified stats.
func mergeStats(ts TrafficStats, online bool, ost traffic.OnlineStats) TrafficStats {
	if !online {
		return ts
	}
	ts.FaultEvents = ost.Events
	ts.Rerouted = ost.Rerouted
	ts.Degraded = ost.Degraded
	ts.Dropped = ost.Dropped()
	ts.StretchHist = ost.StretchHist
	return ts
}
