package extmesh

import (
	"fmt"

	"extmesh/internal/route"
	"extmesh/internal/traffic"
	"extmesh/internal/wormhole"
)

// RoutingKind selects the routing function driving a traffic
// simulation.
type RoutingKind int

// Routing kinds available to SimulateTraffic.
const (
	// WuProtocol routes with the paper's limited-information protocol.
	WuProtocol RoutingKind = iota + 1
	// OracleRouter routes with full global information (upper bound).
	OracleRouter
	// XYRouter is the classic fault-oblivious dimension-ordered
	// baseline.
	XYRouter
)

// TrafficOptions configures a SimulateTraffic run. The zero value is
// not valid; start from DefaultTrafficOptions.
type TrafficOptions struct {
	Model   FaultModel
	Routing RoutingKind

	// InjectionRate is the probability per healthy node per cycle of
	// injecting one packet to a uniformly random healthy destination.
	InjectionRate float64
	Cycles        int
	Warmup        int
	Seed          int64

	// GuaranteedOnly restricts traffic to pairs with a minimal path.
	GuaranteedOnly bool

	// QueueCapacity bounds each per-link queue (0 = unbounded) in
	// store-and-forward mode; ClassChannels adds one virtual channel
	// per quadrant class, which makes minimal routing deadlock-free.
	QueueCapacity int
	ClassChannels bool

	// Wormhole switches to flit-level wormhole simulation with
	// FlitsPerPacket-flit worms, BufferFlits-deep virtual-channel
	// buffers and per-quadrant channel classes.
	Wormhole       bool
	FlitsPerPacket int
	BufferFlits    int
}

// DefaultTrafficOptions returns a light uniform load under the block
// model with Wu-protocol routing.
func DefaultTrafficOptions() TrafficOptions {
	return TrafficOptions{
		Model:          Blocks,
		Routing:        WuProtocol,
		InjectionRate:  0.02,
		Cycles:         400,
		Warmup:         100,
		Seed:           1,
		GuaranteedOnly: true,
		FlitsPerPacket: 8,
		BufferFlits:    2,
	}
}

// TrafficStats is the unified outcome of a traffic simulation.
type TrafficStats struct {
	Injected      int
	Delivered     int
	Undeliverable int
	Deadlocked    bool
	AvgLatency    float64
	AvgStretch    float64
	Throughput    float64
}

// SimulateTraffic runs the network under uniform random load and
// reports delivery statistics: either store-and-forward packet
// switching or flit-level wormhole switching, with Wu's protocol, the
// oracle, or the XY baseline making the per-hop decisions.
func (n *Network) SimulateTraffic(opts TrafficOptions) (TrafficStats, error) {
	md, err := n.modelFor(opts.Model, 1)
	if err != nil {
		return TrafficStats{}, err
	}
	blocked := md.Blocked

	var fn traffic.RoutingFunc
	switch opts.Routing {
	case WuProtocol:
		fn = traffic.WuRouting(route.NewRouter(n.m, blocked))
	case OracleRouter:
		fn = traffic.OracleRouting(n.m, blocked)
	case XYRouter:
		fn = traffic.XYRouting(n.m, blocked)
	default:
		return TrafficStats{}, fmt.Errorf("extmesh: unknown routing kind %d", opts.Routing)
	}

	if opts.Wormhole {
		st, err := wormhole.Run(wormhole.Config{
			M:              n.m,
			Blocked:        blocked,
			Route:          fn,
			FlitsPerPacket: opts.FlitsPerPacket,
			BufferFlits:    opts.BufferFlits,
			ClassVCs:       true,
			InjectionRate:  opts.InjectionRate,
			Cycles:         opts.Cycles,
			Warmup:         opts.Warmup,
			Seed:           opts.Seed,
			GuaranteedOnly: opts.GuaranteedOnly,
		})
		if err != nil {
			return TrafficStats{}, err
		}
		return TrafficStats{
			Injected:      st.Injected,
			Delivered:     st.Delivered,
			Undeliverable: st.Undeliverable,
			Deadlocked:    st.Deadlocked,
			AvgLatency:    st.AvgLatency,
			AvgStretch:    st.AvgStretch,
			Throughput:    st.Throughput,
		}, nil
	}

	st, err := traffic.Run(traffic.Config{
		M:              n.m,
		Blocked:        blocked,
		Route:          fn,
		InjectionRate:  opts.InjectionRate,
		Cycles:         opts.Cycles,
		Warmup:         opts.Warmup,
		Seed:           opts.Seed,
		GuaranteedOnly: opts.GuaranteedOnly,
		QueueCapacity:  opts.QueueCapacity,
		ClassChannels:  opts.ClassChannels,
	})
	if err != nil {
		return TrafficStats{}, err
	}
	return TrafficStats{
		Injected:      st.Injected,
		Delivered:     st.Delivered,
		Undeliverable: st.Undeliverable,
		Deadlocked:    st.Deadlocked,
		AvgLatency:    st.AvgLatency,
		AvgStretch:    st.AvgStretch,
		Throughput:    st.Throughput,
	}, nil
}
